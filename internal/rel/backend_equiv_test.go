package rel

import (
	"fmt"

	"bddbddb/internal/bdd"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// The cross-backend equivalence properties: every relational op must
// produce the same tuple set no matter which backend holds each
// operand (bdd×bdd, bdd×explicit, explicit×bdd, explicit×explicit),
// and bridging a relation through both representations must round-trip
// exactly. Expected results are computed natively on Go maps so the
// check is independent of both backends.

var backendPair = [2]Backend{BDD, Explicit}

type equivUniverse struct {
	u        *Universe
	aV, aH   Attr // A(v,h) on V0,H0
	bH, bF   Attr // B(h,f) on H0,F0
	eV1, eV2 Attr // E(v1,v2) on V0,V1
	zZ1, zZ2 Attr // Z(z1,z2) on Z0,Z1 — volume past the complement cap
	vSz, hSz uint64
	fSz, zSz uint64
}

func newEquivUniverse(t *testing.T) *equivUniverse {
	t.Helper()
	u := NewUniverse()
	u.Declare("V", 12)
	u.Declare("H", 9)
	u.Declare("F", 4)
	u.Declare("Z", 2048)
	u.EnsureInstances("V", 2)
	u.EnsureInstances("Z", 2)
	if err := u.Finalize(FinalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	return &equivUniverse{
		u:  u,
		aV: u.A("v", "V", 0), aH: u.A("h", "H", 0),
		bH: u.A("h", "H", 0), bF: u.A("f", "F", 0),
		eV1: u.A("v1", "V", 0), eV2: u.A("v2", "V", 1),
		zZ1: u.A("z1", "Z", 0), zZ2: u.A("z2", "Z", 1),
		vSz: 12, hSz: 9, fSz: 4, zSz: 2048,
	}
}

func randTuples(rng *rand.Rand, n int, sizes ...uint64) [][]uint64 {
	out := make([][]uint64, 0, n)
	for i := 0; i < n; i++ {
		row := make([]uint64, len(sizes))
		for j, s := range sizes {
			row[j] = rng.Uint64() % s
		}
		out = append(out, row)
	}
	return out
}

func makeRel(t *testing.T, u *Universe, name string, k Backend, tuples [][]uint64, attrs ...Attr) *Relation {
	t.Helper()
	r := u.NewRelation(name, attrs...)
	for _, row := range tuples {
		r.AddTuple(row...)
	}
	if r.Backend() != BDD {
		t.Fatalf("%s: fresh relation on %v, want bdd", name, r.Backend())
	}
	r.SetBackend(k)
	if r.Backend() != k {
		t.Fatalf("%s: SetBackend(%v) left backend %v", name, k, r.Backend())
	}
	return r
}

func rowKey(row []uint64) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func tupleKeySet(tuples [][]uint64) map[string]bool {
	m := make(map[string]bool)
	for _, row := range tuples {
		m[rowKey(row)] = true
	}
	return m
}

func canon(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func relCanon(r *Relation) string { return canon(tupleKeySet(r.Tuples())) }

func checkRel(t *testing.T, label string, r *Relation, want map[string]bool) {
	t.Helper()
	if got := relCanon(r); got != canon(want) {
		t.Errorf("%s: tuples diverge\n got %s\nwant %s", label, got, canon(want))
	}
	if wantN := int64(len(want)); r.Size().Int64() != wantN {
		t.Errorf("%s: Size=%v want %d", label, r.Size(), wantN)
	}
	if r.IsEmpty() != (len(want) == 0) {
		t.Errorf("%s: IsEmpty=%v with %d tuples", label, r.IsEmpty(), len(want))
	}
}

func TestBackendEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runBackendEquiv(t, seed)
		})
	}
}

func runBackendEquiv(t *testing.T, seed int64) {
	eu := newEquivUniverse(t)
	u := eu.u
	rng := rand.New(rand.NewSource(seed))

	aT := randTuples(rng, 1+rng.Intn(40), eu.vSz, eu.hSz)
	cT := randTuples(rng, 1+rng.Intn(40), eu.vSz, eu.hSz)
	bT := randTuples(rng, 1+rng.Intn(30), eu.hSz, eu.fSz)
	aSet, cSet := tupleKeySet(aT), tupleKeySet(cT)

	for _, ka := range backendPair {
		for _, kc := range backendPair {
			pair := fmt.Sprintf("[%v×%v]", ka, kc)
			a := makeRel(t, u, "A", ka, aT, eu.aV, eu.aH)
			c := makeRel(t, u, "C", kc, cT, eu.aV, eu.aH)
			b := makeRel(t, u, "B", kc, bT, eu.bH, eu.bF)

			// Union / Minus / SameTuples across backend pairs.
			want := make(map[string]bool)
			for k := range aSet {
				want[k] = true
			}
			for k := range cSet {
				want[k] = true
			}
			un := a.Union("A∪C", c)
			checkRel(t, pair+" union", un, want)

			want = make(map[string]bool)
			for k := range aSet {
				if !cSet[k] {
					want[k] = true
				}
			}
			mi := a.Minus("A−C", c)
			checkRel(t, pair+" minus", mi, want)

			if got, wantEq := a.SameTuples(c), canon(aSet) == canon(cSet); got != wantEq {
				t.Errorf("%s SameTuples=%v want %v", pair, got, wantEq)
			}
			if !a.SameTuples(a.Clone("A'")) {
				t.Errorf("%s SameTuples(self clone)=false", pair)
			}

			// Join and JoinProject on the shared attribute h.
			wantJoin := make(map[string]bool)
			wantJP := make(map[string]bool)
			for _, ar := range aT {
				for _, br := range bT {
					if ar[1] == br[0] {
						wantJoin[rowKey([]uint64{ar[0], ar[1], br[1]})] = true
						wantJP[rowKey([]uint64{ar[0], br[1]})] = true
					}
				}
			}
			j := a.Join("A⋈B", b)
			checkRel(t, pair+" join", j, wantJoin)
			jp := a.JoinProject("A⋈B−h", b, "h")
			checkRel(t, pair+" joinProject", jp, wantJP)

			// UnionWith mutates in place and reports growth.
			acl := a.Clone("A″")
			grew := acl.UnionWith(c)
			wantGrew := false
			for k := range cSet {
				if !aSet[k] {
					wantGrew = true
				}
			}
			if grew != wantGrew {
				t.Errorf("%s UnionWith changed=%v want %v", pair, grew, wantGrew)
			}
			checkRel(t, pair+" unionWith", acl, tupleKeySet(un.Tuples()))

			for _, r := range []*Relation{a, b, c, un, mi, j, jp, acl} {
				r.Free()
			}
		}
	}

	// Unary ops per backend.
	for _, k := range backendPair {
		lbl := fmt.Sprintf("[%v]", k)
		a := makeRel(t, u, "A", k, aT, eu.aV, eu.aH)

		want := make(map[string]bool)
		for _, row := range aT {
			want[rowKey(row[:1])] = true
		}
		p := a.ProjectOut("A−h", "h")
		checkRel(t, lbl+" projectOut", p, want)

		sel := uint64(int(eu.hSz) / 2)
		want = make(map[string]bool)
		for _, row := range aT {
			if row[1] == sel {
				want[rowKey(row)] = true
			}
		}
		se := a.SelectEq("A[h=k]", "h", sel)
		checkRel(t, lbl+" selectEq", se, want)

		// Complement within the schema volume.
		want = make(map[string]bool)
		for v := uint64(0); v < eu.vSz; v++ {
			for h := uint64(0); h < eu.hSz; h++ {
				if !aSet[rowKey([]uint64{v, h})] {
					want[rowKey([]uint64{v, h})] = true
				}
			}
		}
		co := a.Complement("¬A")
		checkRel(t, lbl+" complement", co, want)

		// Rename to another physical instance, Reshape back, and a pure
		// metadata RenameAttr: tuples must ride along unchanged.
		rn := a.Rename("A@V1", map[string]*bdd.Domain{"v": u.Phys("V", 1)})
		checkRel(t, lbl+" rename", rn, aSet)
		if rn.Attr("v").Phys != u.Phys("V", 1) {
			t.Errorf("%s rename left phys %s", lbl, rn.Attr("v").Phys.Name)
		}
		rs := rn.Reshape("A@V0", map[string]Remap{"v": {NewName: "var", NewPhys: u.Phys("V", 0)}})
		checkRel(t, lbl+" reshape", rs, aSet)
		if !rs.HasAttr("var") || rs.Attr("var").Phys != u.Phys("V", 0) {
			t.Errorf("%s reshape metadata wrong: %s", lbl, rs)
		}
		ra := a.RenameAttr("A'", "h", "heap")
		checkRel(t, lbl+" renameAttr", ra, aSet)

		for _, r := range []*Relation{a, p, se, co, rn, rs, ra} {
			r.Free()
		}

		// SelectEqualAttrs over two instances of one logical domain.
		eT := randTuples(rng, 1+rng.Intn(40), eu.vSz, eu.vSz)
		e := makeRel(t, u, "E", k, eT, eu.eV1, eu.eV2)
		want = make(map[string]bool)
		for _, row := range eT {
			if row[0] == row[1] {
				want[rowKey(row)] = true
			}
		}
		eq := e.SelectEqualAttrs("E[v1=v2]", "v1", "v2")
		checkRel(t, lbl+" selectEqualAttrs", eq, want)
		e.Free()
		eq.Free()
	}

	// Round-trip through both bridges preserves tuples and does not
	// bump the modification stamp (migration changes representation,
	// not content).
	rt := makeRel(t, u, "RT", BDD, aT, eu.aV, eu.aH)
	stamp := rt.Stamp()
	rt.SetBackend(Explicit)
	rt.SetBackend(BDD)
	rt.SetBackend(Explicit)
	checkRel(t, "round-trip", rt, aSet)
	if rt.Stamp() != stamp {
		t.Errorf("round-trip bumped stamp %d→%d", stamp, rt.Stamp())
	}
	if rt.AddTuple(0, 0); rt.Stamp() == stamp {
		t.Error("AddTuple did not bump stamp")
	}
	rt.Free()
}

// TestExplicitComplementBridge drives the volume-capped Complement
// path: a schema too large to enumerate negates through the BDD
// backend, exactly.
func TestExplicitComplementBridge(t *testing.T) {
	eu := newEquivUniverse(t)
	rng := rand.New(rand.NewSource(7))
	zT := randTuples(rng, 25, eu.zSz, eu.zSz)
	z := makeRel(t, eu.u, "Zr", Explicit, zT, eu.zZ1, eu.zZ2)
	n := z.Size().Int64()
	co := z.Complement("¬Zr")
	if co.Backend() != BDD {
		t.Errorf("large-volume explicit complement on %v, want bridged to bdd", co.Backend())
	}
	vol := new(big.Int).Mul(big.NewInt(int64(eu.zSz)), big.NewInt(int64(eu.zSz)))
	want := new(big.Int).Sub(vol, big.NewInt(n))
	if co.Size().Cmp(want) != 0 {
		t.Errorf("complement size %v want %v", co.Size(), want)
	}
	z.Free()
	co.Free()
}

// TestExplicitGrowthValve lowers the promotion cap and checks that an
// explicit relation mutated past it migrates back to BDD instead of
// materializing rows without bound.
func TestExplicitGrowthValve(t *testing.T) {
	old := explicitPromoteRows
	explicitPromoteRows = big.NewInt(10)
	defer func() { explicitPromoteRows = old }()

	eu := newEquivUniverse(t)
	rng := rand.New(rand.NewSource(11))
	small := randTuples(rng, 4, eu.vSz, eu.hSz)
	grow := randTuples(rng, 40, eu.vSz, eu.hSz)
	r := makeRel(t, eu.u, "G", Explicit, small, eu.aV, eu.aH)
	o := makeRel(t, eu.u, "Go", BDD, grow, eu.aV, eu.aH)
	r.UnionWith(o)
	if r.Backend() != BDD {
		t.Errorf("growth valve left backend %v, want bdd", r.Backend())
	}
	want := tupleKeySet(small)
	for k := range tupleKeySet(grow) {
		want[k] = true
	}
	checkRel(t, "valve union", r, want)
	r.Free()
	o.Free()
}

// TestRootPanicsOnExplicit pins the contract checkpointing and serving
// rely on: Root is only for BDD-backed relations, BDDRoot bridges.
func TestRootPanicsOnExplicit(t *testing.T) {
	eu := newEquivUniverse(t)
	r := makeRel(t, eu.u, "R", Explicit, [][]uint64{{1, 2}, {3, 4}}, eu.aV, eu.aH)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Root on explicit relation did not panic")
			}
		}()
		r.Root()
	}()
	root, release := r.BDDRoot()
	chk := eu.u.NewRelationFromBDD("chk", eu.u.M.Ref(root), eu.aV, eu.aH)
	if got := relCanon(chk); got != relCanon(r) {
		t.Errorf("BDDRoot tuples diverge: %s vs %s", got, relCanon(r))
	}
	release()
	chk.Free()
	r.Free()

	// Freeze pins to BDD so snapshots can take roots.
	f := makeRel(t, eu.u, "F", Explicit, [][]uint64{{1, 2}}, eu.aV, eu.aH)
	f.Freeze()
	if f.Backend() != BDD || !f.Frozen() {
		t.Errorf("Freeze left backend=%v frozen=%v", f.Backend(), f.Frozen())
	}
	_ = f.Root()
	if f.SetBackend(Explicit) {
		t.Error("frozen relation migrated")
	}
}
