package rel

import (
	"reflect"
	"testing"
)

// Order groups ("C+HC") exist so the O(k) arithmetic primitives can
// relate values across two logical domains: AddConst/Equals require the
// operand domains bitwise interleaved, which only happens inside one
// block. These tests pin the group layout and the cross-domain diagonal
// that Algorithm 8's heap-context materialization depends on.

func groupUniverse(t *testing.T, extra map[string]int) *Universe {
	t.Helper()
	u := NewUniverse()
	u.Declare("V", 20)
	u.Declare("C", 16)
	u.Declare("HC", 16)
	u.EnsureInstances("C", 2)
	u.EnsureInstances("HC", 2)
	if err := u.Finalize(FinalizeOptions{
		Order:          []string{"V", "C+HC"},
		ExtraInstances: extra,
	}); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestOrderGroupCrossDomainDiagonal(t *testing.T) {
	u := groupUniverse(t, nil)
	if got := u.BlockOrder(); !reflect.DeepEqual(got, []string{"V", "C+HC"}) {
		t.Fatalf("BlockOrder = %v", got)
	}
	if u.PrimaryInstances("C") != 2 || u.PrimaryInstances("HC") != 2 {
		t.Fatalf("PrimaryInstances C=%d HC=%d", u.PrimaryInstances("C"), u.PrimaryInstances("HC"))
	}
	// Every (C instance, HC instance) pair shares the block, so all four
	// combinations must accept the arithmetic primitives.
	for ci := 0; ci < 2; ci++ {
		for hi := 0; hi < 2; hi++ {
			n, err := u.M.AddConst(u.Phys("C", ci), u.Phys("HC", hi), 0, 1, 5)
			if err != nil {
				t.Fatalf("AddConst C%d->HC%d: %v", ci, hi, err)
			}
			u.M.Deref(n)
		}
	}
	diag, err := u.M.AddConst(u.Phys("C", 0), u.Phys("HC", 0), 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := u.NewRelationFromBDD("hcDiag", diag, u.A("c", "C", 0), u.A("hc", "HC", 0))
	want := tupleSet{}
	for c := uint64(1); c <= 5; c++ {
		want.add(c, c)
	}
	requireTuples(t, r, want)
}

func TestOrderGroupExtraInstancesTrail(t *testing.T) {
	// ExtraInstances of a grouped constituent must trail the main blocks
	// (so snapshot hydration reproduces main-block levels) and therefore
	// are NOT interleaved with the partner domain.
	u := groupUniverse(t, map[string]int{"HC": 1})
	if u.Domain("HC").Instances() != 3 {
		t.Fatalf("HC instances = %d, want 3", u.Domain("HC").Instances())
	}
	if u.PrimaryInstances("HC") != 2 {
		t.Fatalf("PrimaryInstances(HC) = %d, want 2", u.PrimaryInstances("HC"))
	}
	// The trailing instance sits in its own block: the aligned-bits
	// precondition fails, which is the documented trade-off.
	if _, err := u.M.AddConst(u.Phys("C", 0), u.Phys("HC", 2), 0, 1, 5); err == nil {
		t.Fatal("AddConst to a trailing extra instance unexpectedly aligned")
	}
}

func TestOrderGroupValidation(t *testing.T) {
	u := NewUniverse()
	u.Declare("C", 16)
	if err := u.Finalize(FinalizeOptions{Order: []string{"C+HC"}}); err == nil {
		t.Fatal("unknown grouped domain accepted")
	}
	u2 := NewUniverse()
	u2.Declare("C", 16)
	u2.Declare("HC", 16)
	if err := u2.Finalize(FinalizeOptions{Order: []string{"C+HC", "HC"}}); err == nil {
		t.Fatal("domain listed in group and alone accepted")
	}
}
