package rel

import (
	"fmt"
	"math/big"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bddbddb/internal/bdd"
)

// tupleSet is the naive oracle: a set of tuples keyed by fmt of values.
type tupleSet map[string][]uint64

func key(vals []uint64) string { return fmt.Sprint(vals) }

func (s tupleSet) add(vals ...uint64) {
	s[key(vals)] = append([]uint64(nil), vals...)
}

func (s tupleSet) sorted() [][]uint64 {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]uint64, len(keys))
	for i, k := range keys {
		out[i] = s[k]
	}
	return out
}

func sortTuples(ts [][]uint64) {
	sort.Slice(ts, func(i, j int) bool { return key(ts[i]) < key(ts[j]) })
}

func requireTuples(t *testing.T, r *Relation, want tupleSet) {
	t.Helper()
	got := r.Tuples()
	sortTuples(got)
	w := want.sorted()
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("%s tuples = %v, want %v", r.Name, got, w)
	}
	if r.Size().Cmp(big.NewInt(int64(len(want)))) != 0 {
		t.Fatalf("%s Size = %s, want %d", r.Name, r.Size(), len(want))
	}
}

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	u := NewUniverse()
	u.Declare("V", 20)
	u.Declare("H", 10)
	u.Declare("F", 6)
	u.EnsureInstances("V", 3)
	u.EnsureInstances("H", 2)
	if err := u.Finalize(FinalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestAddTupleAndIterate(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("vP", u.A("v", "V", 0), u.A("h", "H", 0))
	want := tupleSet{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		v, h := uint64(rng.Intn(20)), uint64(rng.Intn(10))
		r.AddTuple(v, h)
		want.add(v, h)
	}
	requireTuples(t, r, want)
}

func TestUnionMinus(t *testing.T) {
	u := testUniverse(t)
	a := u.NewRelation("a", u.A("v", "V", 0))
	b := u.NewRelation("b", u.A("v", "V", 0))
	for _, v := range []uint64{1, 2, 3, 4} {
		a.AddTuple(v)
	}
	for _, v := range []uint64{3, 4, 5} {
		b.AddTuple(v)
	}
	un := a.Union("u", b)
	want := tupleSet{}
	for _, v := range []uint64{1, 2, 3, 4, 5} {
		want.add(v)
	}
	requireTuples(t, un, want)

	mi := a.Minus("m", b)
	want = tupleSet{}
	want.add(1)
	want.add(2)
	requireTuples(t, mi, want)

	changed := a.UnionWith(b)
	if !changed {
		t.Fatal("UnionWith should report change")
	}
	if a.UnionWith(b) {
		t.Fatal("second UnionWith should be a no-op")
	}
}

func TestJoinNatural(t *testing.T) {
	u := testUniverse(t)
	// assign(dest:V1, src:V0) ⋈ vP(src→? no: vP(v:V0,h:H0) with v renamed)
	vP := u.NewRelation("vP", u.A("v", "V", 0), u.A("h", "H", 0))
	vP.AddTuple(1, 5)
	vP.AddTuple(2, 6)
	vP.AddTuple(2, 7)
	assign := u.NewRelation("assign", u.A("dest", "V", 1), u.A("v", "V", 0))
	assign.AddTuple(3, 1)
	assign.AddTuple(4, 2)
	j := assign.Join("j", vP)
	want := tupleSet{}
	want.add(3, 1, 5)
	want.add(4, 2, 6)
	want.add(4, 2, 7)
	requireTuples(t, j, want)
}

func TestJoinProjectMatchesJoinThenProject(t *testing.T) {
	u := testUniverse(t)
	vP := u.NewRelation("vP", u.A("v", "V", 0), u.A("h", "H", 0))
	assign := u.NewRelation("assign", u.A("dest", "V", 1), u.A("v", "V", 0))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		vP.AddTuple(uint64(rng.Intn(20)), uint64(rng.Intn(10)))
		assign.AddTuple(uint64(rng.Intn(20)), uint64(rng.Intn(20)))
	}
	fused := assign.JoinProject("f", vP, "v")
	joined := assign.Join("j", vP)
	projected := joined.ProjectOut("p", "v")
	if !fused.SameTuples(projected) {
		t.Fatal("JoinProject != Join∘ProjectOut")
	}
}

func TestRenameMovesPhysical(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "V", 1))
	r.AddTuple(1, 2)
	r.AddTuple(3, 4)
	moved := r.Rename("moved", map[string]*bdd.Domain{"a": u.Phys("V", 2)})
	if moved.Attr("a").Phys != u.Phys("V", 2) {
		t.Fatal("attribute not rebound")
	}
	want := tupleSet{}
	want.add(1, 2)
	want.add(3, 4)
	requireTuples(t, moved, want)
	// Joinable against a relation on V2 now.
	other := u.NewRelation("o", u.A("a", "V", 2))
	other.AddTuple(3)
	j := moved.Join("j", other)
	want = tupleSet{}
	want.add(3, 4)
	requireTuples(t, j, want)
}

func TestRenameSwapInstances(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "V", 1))
	r.AddTuple(1, 2)
	r.AddTuple(3, 4)
	swapped := r.Rename("s", map[string]*bdd.Domain{
		"a": u.Phys("V", 1),
		"b": u.Phys("V", 0),
	})
	// Schema swapped but tuple values unchanged (a=1,b=2 still holds).
	want := tupleSet{}
	want.add(1, 2)
	want.add(3, 4)
	requireTuples(t, swapped, want)
	if swapped.Attr("a").Phys != u.Phys("V", 1) || swapped.Attr("b").Phys != u.Phys("V", 0) {
		t.Fatal("swap did not rebind attributes")
	}
}

func TestSelectEq(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0), u.A("h", "H", 0))
	r.AddTuple(1, 2)
	r.AddTuple(1, 3)
	r.AddTuple(4, 2)
	sel := r.SelectEq("sel", "v", 1)
	want := tupleSet{}
	want.add(1, 2)
	want.add(1, 3)
	requireTuples(t, sel, want)
	dropped := sel.ProjectOut("d", "v")
	want = tupleSet{}
	want.add(2)
	want.add(3)
	requireTuples(t, dropped, want)
}

func TestComplement(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("h", "H", 0))
	r.AddTuple(0)
	r.AddTuple(9)
	c := r.Complement("c")
	want := tupleSet{}
	for v := uint64(1); v < 9; v++ {
		want.add(v)
	}
	requireTuples(t, c, want)
	// Complement twice is identity.
	cc := c.Complement("cc")
	if !cc.SameTuples(r) {
		t.Fatal("double complement is not identity")
	}
}

func TestComplementBinary(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("h", "H", 0), u.A("f", "F", 0))
	r.AddTuple(3, 2)
	c := r.Complement("c")
	if got := c.Size(); got.Cmp(big.NewInt(10*6-1)) != 0 {
		t.Fatalf("complement size %s, want 59", got)
	}
}

func TestRenameAttrMetadataOnly(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0))
	r.AddTuple(7)
	s := r.RenameAttr("s", "v", "w")
	if !s.HasAttr("w") || s.HasAttr("v") {
		t.Fatal("attribute not renamed")
	}
	if s.Root() != r.Root() {
		t.Fatal("RenameAttr should not touch the BDD")
	}
}

func TestCloneIndependent(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0))
	r.AddTuple(1)
	c := r.Clone("c")
	c.AddTuple(2)
	if r.Size().Cmp(big.NewInt(1)) != 0 {
		t.Fatal("mutating clone affected original")
	}
	if c.Size().Cmp(big.NewInt(2)) != 0 {
		t.Fatal("clone lost a tuple")
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	u := testUniverse(t)
	a := u.NewRelation("a", u.A("v", "V", 0))
	b := u.NewRelation("b", u.A("v", "V", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("union across physical domains should panic")
		}
	}()
	a.Union("x", b)
}

func TestJoinMisalignedPanics(t *testing.T) {
	u := testUniverse(t)
	a := u.NewRelation("a", u.A("v", "V", 0))
	b := u.NewRelation("b", u.A("v", "V", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("join with misaligned shared attribute should panic")
		}
	}()
	a.Join("x", b)
}

func TestJoinPhysCollisionPanics(t *testing.T) {
	u := testUniverse(t)
	a := u.NewRelation("a", u.A("x", "V", 0))
	b := u.NewRelation("b", u.A("y", "V", 0))
	defer func() {
		if recover() == nil {
			t.Fatal("join with colliding private attributes should panic")
		}
	}()
	a.Join("x", b)
}

func TestEmptyRelation(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0))
	if !r.IsEmpty() {
		t.Fatal("new relation should be empty")
	}
	if len(r.Tuples()) != 0 {
		t.Fatal("empty relation has tuples")
	}
	if r.Size().Sign() != 0 {
		t.Fatal("empty relation has nonzero size")
	}
}

// TestDifferentialRandomOps cross-checks a random pipeline of relational
// operations against the naive tuple-set oracle.
func TestDifferentialRandomOps(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		// r(a:V0, b:H0), s(b:H0, c:F0)
		r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "H", 0))
		s := u.NewRelation("s", u.A("b", "H", 0), u.A("c", "F", 0))
		rSet, sSet := tupleSet{}, tupleSet{}
		for i := 0; i < 25; i++ {
			a, b := uint64(rng.Intn(20)), uint64(rng.Intn(10))
			r.AddTuple(a, b)
			rSet.add(a, b)
			b2, c := uint64(rng.Intn(10)), uint64(rng.Intn(6))
			s.AddTuple(b2, c)
			sSet.add(b2, c)
		}
		// Join on b, project b away: {(a,c) | ∃b r(a,b) ∧ s(b,c)}.
		j := r.JoinProject("j", s, "b")
		want := tupleSet{}
		for _, rt := range rSet {
			for _, st := range sSet {
				if rt[1] == st[0] {
					want.add(rt[0], st[1])
				}
			}
		}
		requireTuples(t, j, want)
		r.Free()
		s.Free()
		j.Free()
		u.GC()
	}
}

func TestFreeReleasesNodes(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "V", 1))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		r.AddTuple(uint64(rng.Intn(20)), uint64(rng.Intn(20)))
	}
	r.Free()
	live := u.GC()
	// Only terminals and the domains' interned varsets should survive.
	if live > 2+u.M.NumVars()+8 {
		t.Fatalf("GC after Free left %d nodes live", live)
	}
}

func TestUniverseErrors(t *testing.T) {
	u := NewUniverse()
	u.Declare("A", 4)
	if err := u.Finalize(FinalizeOptions{Order: []string{"B"}}); err == nil {
		t.Fatal("unknown domain in order accepted")
	}
	u2 := NewUniverse()
	u2.Declare("A", 4)
	if err := u2.Finalize(FinalizeOptions{Order: []string{"A", "A"}}); err == nil {
		t.Fatal("duplicate domain in order accepted")
	}
	u3 := NewUniverse()
	u3.Declare("A", 4)
	if err := u3.Finalize(FinalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := u3.Finalize(FinalizeOptions{}); err == nil {
		t.Fatal("double Finalize accepted")
	}
}
