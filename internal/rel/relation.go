package rel

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"bddbddb/internal/bdd"
)

// Attr binds an attribute name to a logical domain and the physical
// instance holding its bits.
type Attr struct {
	Name string
	Dom  *LogicalDomain
	Phys *bdd.Domain
}

// A returns an attribute of the named logical domain bound to physical
// instance inst.
func (u *Universe) A(attrName, domName string, inst int) Attr {
	d := u.logical[domName]
	if d == nil {
		panic(fmt.Sprintf("rel: unknown domain %q", domName))
	}
	return Attr{Name: attrName, Dom: d, Phys: u.Phys(domName, inst)}
}

// Relation is a set of tuples over named attributes — a thin
// schema-carrying facade over a Storage backend (BDD by default,
// explicit rows via SetBackend). The facade validates schemas, owns
// the mixed-backend coercion policy, and keeps a per-universe
// modification stamp so caches can revalidate without relying on BDD
// root canonicity. All deriving operations keep their backing storage
// referenced; call Free when a relation is no longer needed.
type Relation struct {
	u      *Universe
	Name   string
	attrs  []Attr
	store  Storage
	frozen bool

	// stamp is bumped (from the universe's monotone counter) on every
	// content mutation; (pointer, stamp) identifies a relation state.
	stamp uint64
	// support caches supportVars(): the sorted BDD levels of all
	// attributes. Attrs never change after construction.
	support []int32
}

// explicitPromoteRows caps how many rows an explicit relation may hold:
// mutating past it promotes the relation back to BDD storage. This is
// the safety valve that keeps forced-explicit configs from
// materializing context-cloned relations (10^10+ tuples) row by row.
var explicitPromoteRows = big.NewInt(1 << 20)

func newRel(u *Universe, name string, attrs []Attr, st Storage) *Relation {
	return &Relation{u: u, Name: name, attrs: attrs, store: st, stamp: u.nextStamp()}
}

// NewRelation creates an empty relation. Attribute names must be unique
// and no two attributes may share a physical domain.
func (u *Universe) NewRelation(name string, attrs ...Attr) *Relation {
	if !u.final {
		panic("rel: NewRelation before Finalize")
	}
	checkAttrs(name, attrs)
	return newRel(u, name, append([]Attr(nil), attrs...), newBDDStore(u, u.M.Ref(bdd.False)))
}

// NewRelationFromBDD wraps an already-referenced BDD node as a relation;
// the relation takes ownership of the caller's reference.
func (u *Universe) NewRelationFromBDD(name string, root bdd.Node, attrs ...Attr) *Relation {
	checkAttrs(name, attrs)
	return newRel(u, name, append([]Attr(nil), attrs...), newBDDStore(u, root))
}

func checkAttrs(name string, attrs []Attr) {
	seenName := make(map[string]bool)
	seenPhys := make(map[*bdd.Domain]string)
	for _, a := range attrs {
		if a.Phys == nil || a.Dom == nil {
			panic(fmt.Sprintf("rel: relation %s has incomplete attribute %q", name, a.Name))
		}
		if seenName[a.Name] {
			panic(fmt.Sprintf("rel: relation %s repeats attribute %q", name, a.Name))
		}
		seenName[a.Name] = true
		if prev, ok := seenPhys[a.Phys]; ok {
			panic(fmt.Sprintf("rel: relation %s binds attributes %q and %q to one physical domain %s",
				name, prev, a.Name, a.Phys.Name))
		}
		seenPhys[a.Phys] = a.Name
	}
}

// Attrs returns the relation's attributes.
func (r *Relation) Attrs() []Attr { return r.attrs }

// Attr returns the attribute with the given name.
func (r *Relation) Attr(name string) Attr {
	for _, a := range r.attrs {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("rel: relation %s has no attribute %q (has %s)", r.Name, name, r.attrNames()))
}

// HasAttr reports whether the relation has an attribute with the name.
func (r *Relation) HasAttr(name string) bool {
	return attrIndex(r.attrs, name) >= 0
}

func attrIndex(attrs []Attr, name string) int {
	for i, a := range attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

func (r *Relation) attrNames() string {
	names := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// Backend reports which storage backend currently holds the tuples.
func (r *Relation) Backend() Backend { return r.store.kind() }

// Stamp returns the relation's modification stamp. Stamps come from a
// per-universe monotone counter: a (relation pointer, stamp) pair seen
// equal later proves the content is unchanged, because every mutation
// bumps the stamp and counters are never reused. Backend migrations do
// NOT bump the stamp — they change representation, not content.
func (r *Relation) Stamp() uint64 { return r.stamp }

func (r *Relation) touch() { r.stamp = r.u.nextStamp() }

// SetBackend converts the relation's tuple storage in place and
// reports whether a conversion happened. Frozen relations (pinned to
// BDD for the serving layer) and nullary schemas never migrate.
func (r *Relation) SetBackend(b Backend) bool {
	if r.frozen || len(r.attrs) == 0 || r.store.kind() == b {
		return false
	}
	var ns Storage
	switch b {
	case BDD:
		ns = r.store.toBDD(r.attrs)
		r.u.bstats.MigrationsToBDD++
	case Explicit:
		ns = r.store.toExplicit(r.attrs, r.supportVars())
		r.u.bstats.MigrationsToExplicit++
	default:
		panic(fmt.Sprintf("rel: SetBackend(%v)", b))
	}
	r.store.free()
	r.store = ns
	return true
}

// Root exposes the underlying BDD node (still owned by the relation).
// It panics for explicit-backed relations; use BDDRoot to materialize.
func (r *Relation) Root() bdd.Node {
	bs, ok := r.store.(*bddStore)
	if !ok {
		panic(fmt.Sprintf("rel: Root of %s: stored in %s backend (use BDDRoot)", r.Name, r.store.kind()))
	}
	return bs.root
}

// BDDRoot returns the relation's tuples as a BDD root plus a release
// function. BDD-backed relations return their live root (still owned
// by the relation) with a no-op release; explicit-backed relations
// materialize a temporary that the release frees. Checkpointing uses
// this to dump mixed-backend solver state as plain BDD DAGs.
func (r *Relation) BDDRoot() (bdd.Node, func()) {
	if bs, ok := r.store.(*bddStore); ok {
		return bs.root, func() {}
	}
	t := r.store.toBDD(r.attrs)
	return t.root, func() { t.free() }
}

// Freeze marks the relation immutable: AddTuple, UnionWith, and Free
// panic afterwards. Deriving operations (Join, SelectEq, ...) stay
// legal — they allocate new relations and never touch the receiver.
// The serving layer freezes solved relations before handing them to
// concurrent query evaluation and snapshots them by BDD root, so
// Freeze first pins the relation to the BDD backend; frozen relations
// never migrate. There is no Unfreeze.
func (r *Relation) Freeze() {
	if r.store.kind() != BDD {
		r.SetBackend(BDD)
	}
	r.frozen = true
}

// Frozen reports whether Freeze was called.
func (r *Relation) Frozen() bool { return r.frozen }

func (r *Relation) requireMutable(op string) {
	if r.frozen {
		panic(fmt.Sprintf("rel: %s on frozen relation %s", op, r.Name))
	}
}

// Free releases the relation's storage. The relation must not be used
// afterwards.
func (r *Relation) Free() {
	r.requireMutable("Free")
	r.store.free()
	r.attrs = nil
	r.support = nil
}

// Clone returns an independent copy sharing the same tuples.
func (r *Relation) Clone(name string) *Relation {
	c := newRel(r.u, name, append([]Attr(nil), r.attrs...), r.store.clone())
	c.support = r.support
	return c
}

// coerced returns r's tuple storage in kind b plus a release function
// for any temporary the bridge materialized. Same-kind calls borrow
// the live storage with a no-op release.
func (r *Relation) coerced(b Backend) (Storage, func()) {
	if r.store.kind() == b {
		return r.store, func() {}
	}
	var t Storage
	if b == BDD {
		t = r.store.toBDD(r.attrs)
	} else {
		t = r.store.toExplicit(r.attrs, r.supportVars())
	}
	return t, t.free
}

// binKind picks the backend a mixed binary op runs on: both-explicit
// stays explicit, otherwise BDD. The adaptive selection keeps explicit
// relations small, so the explicit side is always the cheap one to
// bridge.
func binKind(r, o *Relation) Backend {
	if r.store.kind() == Explicit && o.store.kind() == Explicit {
		return Explicit
	}
	return BDD
}

// permOf maps a's attribute positions to b's: perm[i] is the index in
// b of a[i]'s attribute. Schemas must already be validated equal.
func permOf(a, b []Attr) []int {
	perm := make([]int, len(a))
	for i := range a {
		perm[i] = attrIndex(b, a[i].Name)
	}
	return perm
}

// AddTuple inserts one tuple, with values listed in attribute order.
func (r *Relation) AddTuple(vals ...uint64) {
	r.requireMutable("AddTuple")
	if len(vals) != len(r.attrs) {
		panic(fmt.Sprintf("rel: AddTuple(%v) into %s(%s)", vals, r.Name, r.attrNames()))
	}
	for i, a := range r.attrs {
		if vals[i] >= a.Dom.Size {
			panic(fmt.Sprintf("rel: value %d exceeds domain %s (size %d) in %s.%s",
				vals[i], a.Dom.Name, a.Dom.Size, r.Name, a.Name))
		}
	}
	r.store.addTuple(r.attrs, vals)
	r.touch()
}

func (r *Relation) sameSchema(o *Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for _, a := range r.attrs {
		j := attrIndex(o.attrs, a.Name)
		if j < 0 || o.attrs[j].Phys != a.Phys {
			return false
		}
	}
	return true
}

func (r *Relation) requireSameSchema(o *Relation, op string) {
	if !r.sameSchema(o) {
		panic(fmt.Sprintf("rel: %s of %s(%s) and %s(%s): schemas differ",
			op, r.Name, r.attrNames(), o.Name, o.attrNames()))
	}
}

// UnionWith adds all of o's tuples to r in place and reports whether r
// changed.
func (r *Relation) UnionWith(o *Relation) bool {
	r.requireMutable("UnionWith")
	r.requireSameSchema(o, "union")
	if o.store.isEmpty() {
		return false
	}
	if r.store.kind() == Explicit {
		// Growth valve: rather than materialize a huge operand into
		// rows, promote the receiver back to BDD past the cap.
		n := new(big.Int).Add(r.Size(), o.Size())
		if n.Cmp(explicitPromoteRows) > 0 {
			r.SetBackend(BDD)
		}
	}
	k := r.store.kind()
	os, release := o.coerced(k)
	changed := r.store.unionWith(os, permOf(r.attrs, o.attrs))
	release()
	r.u.noteOp(k)
	if changed {
		r.touch()
	}
	return changed
}

// Union returns a new relation with the tuples of both operands.
func (r *Relation) Union(name string, o *Relation) *Relation {
	r.requireSameSchema(o, "union")
	if o.store.isEmpty() {
		return r.Clone(name)
	}
	k := binKind(r, o)
	rs, rrel := r.coerced(k)
	os, orel := o.coerced(k)
	st := rs.union(os, permOf(r.attrs, o.attrs))
	rrel()
	orel()
	r.u.noteOp(k)
	return newRel(r.u, name, append([]Attr(nil), r.attrs...), st)
}

// Minus returns the tuples of r that are not in o.
func (r *Relation) Minus(name string, o *Relation) *Relation {
	r.requireSameSchema(o, "difference")
	// Empty operands make the result r itself (or empty, which a clone
	// of empty r also is) — skip the cross-backend coercion a mixed
	// pair would otherwise pay. Empty rule results against large heads
	// are the common case in converging fixpoint iterations.
	if r.store.isEmpty() || o.store.isEmpty() {
		c := r.Clone(name)
		return c
	}
	k := binKind(r, o)
	rs, rrel := r.coerced(k)
	os, orel := o.coerced(k)
	st := rs.minus(os, permOf(r.attrs, o.attrs))
	rrel()
	orel()
	r.u.noteOp(k)
	return newRel(r.u, name, append([]Attr(nil), r.attrs...), st)
}

// joinAttrs computes the result schema of a natural join and validates
// physical alignment: shared attribute names must share a physical
// domain; attributes private to one side must not collide physically.
func joinAttrs(a, b *Relation, op string) (shared []string, result []Attr) {
	result = append(result, a.attrs...)
	for _, battr := range b.attrs {
		if a.HasAttr(battr.Name) {
			aattr := a.Attr(battr.Name)
			if aattr.Phys != battr.Phys {
				panic(fmt.Sprintf("rel: %s of %s and %s: attribute %q on %s vs %s (rename first)",
					op, a.Name, b.Name, battr.Name, aattr.Phys.Name, battr.Phys.Name))
			}
			shared = append(shared, battr.Name)
			continue
		}
		for _, aattr := range a.attrs {
			if aattr.Phys == battr.Phys {
				panic(fmt.Sprintf("rel: %s of %s and %s: attributes %q and %q collide on %s",
					op, a.Name, b.Name, aattr.Name, battr.Name, battr.Phys.Name))
			}
		}
		result = append(result, battr)
	}
	return shared, result
}

// Join returns the natural join of r and o on their shared attribute
// names.
func (r *Relation) Join(name string, o *Relation) *Relation {
	return r.joinProjectOp(name, o, nil)
}

// JoinProject joins r and o and projects away the named attributes in
// one pass (a BDD relprod, or an explicit hash join) — the workhorse
// of rule application.
func (r *Relation) JoinProject(name string, o *Relation, drop ...string) *Relation {
	return r.joinProjectOp(name, o, drop)
}

func (r *Relation) joinProjectOp(name string, o *Relation, drop []string) *Relation {
	_, attrs := joinAttrs(r, o, "join")
	for _, d := range drop {
		if attrIndex(attrs, d) < 0 {
			panic(fmt.Sprintf("rel: JoinProject drops unknown attribute %q", d))
		}
	}
	spec := &joinSpec{lArity: len(r.attrs), rArity: len(o.attrs)}
	var keep []Attr
	for pos, a := range attrs {
		dropped := false
		for _, d := range drop {
			if a.Name == d {
				dropped = true
				break
			}
		}
		if dropped {
			spec.dropLevels = append(spec.dropLevels, a.Phys.Levels()...)
			continue
		}
		keep = append(keep, a)
		if pos < len(r.attrs) {
			spec.out = append(spec.out, srcCol{col: pos})
		} else {
			spec.out = append(spec.out, srcCol{right: true, col: attrIndex(o.attrs, a.Name)})
		}
	}
	for j, b := range o.attrs {
		if i := attrIndex(r.attrs, b.Name); i >= 0 {
			spec.shared = append(spec.shared, [2]int{i, j})
		}
	}
	k := binKind(r, o)
	if len(keep) == 0 {
		k = BDD // nullary results stay BDD-backed
	}
	rs, rrel := r.coerced(k)
	os, orel := o.coerced(k)
	st := rs.joinProject(os, spec)
	if st == nil {
		// The explicit join overflowed explicitJoinFallbackRows: the
		// result is dense enough that rows are the wrong shape for it.
		// Re-run on BDD operands — the operands themselves are small
		// (they fit explicit storage), only the product is big.
		rrel()
		orel()
		k = BDD
		rs, rrel = r.coerced(k)
		os, orel = o.coerced(k)
		st = rs.joinProject(os, spec)
	}
	rrel()
	orel()
	r.u.noteOp(k)
	return newRel(r.u, name, keep, st)
}

// ProjectOut removes the named attributes (existential quantification).
func (r *Relation) ProjectOut(name string, drop ...string) *Relation {
	for _, d := range drop {
		if !r.HasAttr(d) {
			panic(fmt.Sprintf("rel: ProjectOut of unknown attribute %q from %s", d, r.Name))
		}
	}
	var keep []Attr
	spec := &projSpec{}
	for i, a := range r.attrs {
		dropped := false
		for _, d := range drop {
			if a.Name == d {
				dropped = true
				break
			}
		}
		if dropped {
			spec.dropLevels = append(spec.dropLevels, a.Phys.Levels()...)
		} else {
			keep = append(keep, a)
			spec.keepCols = append(spec.keepCols, i)
		}
	}
	k := r.store.kind()
	if len(keep) == 0 {
		k = BDD // nullary results stay BDD-backed
	}
	rs, rrel := r.coerced(k)
	st := rs.projectOut(spec)
	rrel()
	r.u.noteOp(k)
	return newRel(r.u, name, keep, st)
}

// Rename returns r with some attributes rebound to different physical
// instances (one BDD replace; metadata-only for explicit rows). The
// map keys are attribute names.
func (r *Relation) Rename(name string, moves map[string]*bdd.Domain) *Relation {
	for n := range moves {
		if !r.HasAttr(n) {
			panic(fmt.Sprintf("rel: Rename of unknown attribute %q in %s", n, r.Name))
		}
	}
	attrs := append([]Attr(nil), r.attrs...)
	spec := &rebindSpec{}
	for i := range attrs {
		to, ok := moves[attrs[i].Name]
		if !ok || to == attrs[i].Phys {
			continue
		}
		spec.moves = append(spec.moves, physMove{from: attrs[i].Phys, to: to})
		attrs[i].Phys = to
	}
	checkAttrs(name, attrs)
	st := r.store.rebind(spec)
	r.u.noteOp(r.store.kind())
	return newRel(r.u, name, attrs, st)
}

// RenameAttr returns r with one attribute renamed (metadata only; the
// tuples and physical binding are unchanged).
func (r *Relation) RenameAttr(name, oldAttr, newAttr string) *Relation {
	attrs := append([]Attr(nil), r.attrs...)
	found := false
	for i := range attrs {
		if attrs[i].Name == oldAttr {
			attrs[i].Name = newAttr
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("rel: RenameAttr of unknown attribute %q in %s", oldAttr, r.Name))
	}
	checkAttrs(name, attrs)
	c := newRel(r.u, name, attrs, r.store.clone())
	c.support = r.support
	return c
}

// SelectEq returns the tuples whose attribute equals val (attribute
// retained; ProjectOut to drop it).
func (r *Relation) SelectEq(name, attr string, val uint64) *Relation {
	i := attrIndex(r.attrs, attr)
	if i < 0 {
		panic(fmt.Sprintf("rel: relation %s has no attribute %q (has %s)", r.Name, attr, r.attrNames()))
	}
	a := r.attrs[i]
	if val >= a.Dom.Size {
		panic(fmt.Sprintf("rel: SelectEq value %d outside domain %s", val, a.Dom.Name))
	}
	st := r.store.selectEq(&selSpec{phys: a.Phys, col: i, val: val})
	r.u.noteOp(r.store.kind())
	c := newRel(r.u, name, append([]Attr(nil), r.attrs...), st)
	c.support = r.support
	return c
}

// Complement returns the tuples over the attributes' domains that are
// NOT in r — negation relative to the finite universe of the schema,
// used by stratified Datalog negation. Explicit-backed relations with
// a schema volume past the enumeration cap negate through the BDD
// backend, so the result's backend may differ from the receiver's.
func (r *Relation) Complement(name string) *Relation {
	st := r.store.complement(r.attrs)
	r.u.noteOp(st.kind())
	c := newRel(r.u, name, append([]Attr(nil), r.attrs...), st)
	c.support = r.support
	return c
}

// SameSchemaAs reports whether both relations bind the same attribute
// names to the same physical domains (tuple order notwithstanding).
func (r *Relation) SameSchemaAs(o *Relation) bool { return r.sameSchema(o) }

// IsEmpty reports whether the relation has no tuples.
func (r *Relation) IsEmpty() bool { return r.store.isEmpty() }

// SameTuples reports whether two relations over the same schema hold
// exactly the same tuples (constant time when both are BDD-backed:
// BDDs are canonical).
func (r *Relation) SameTuples(o *Relation) bool {
	r.requireSameSchema(o, "comparison")
	k := binKind(r, o)
	rs, rrel := r.coerced(k)
	os, orel := o.coerced(k)
	eq := rs.sameTuples(os, permOf(r.attrs, o.attrs))
	rrel()
	orel()
	return eq
}

// Size returns the exact tuple count.
func (r *Relation) Size() *big.Int {
	if len(r.attrs) == 0 {
		if r.store.(*bddStore).root == bdd.True {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	return r.store.size(r.attrs, r.supportVars())
}

// SizeFloat returns the tuple count as a float64 — the lossy form the
// Datalog planner's cost model consumes. Use Size for exact counts.
func (r *Relation) SizeFloat() float64 {
	f, _ := new(big.Float).SetInt(r.Size()).Float64()
	return f
}

func (r *Relation) supportVars() []int32 {
	if r.support == nil {
		var vars []int32
		for _, a := range r.attrs {
			vars = append(vars, a.Phys.Levels()...)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		r.support = vars
	}
	return r.support
}

// Iterate calls fn for every tuple (values in attribute order) until it
// returns false. Enumeration order is deterministic per backend (BDD
// variable order for BDD storage, lexicographic for explicit rows).
func (r *Relation) Iterate(fn func(vals []uint64) bool) {
	if len(r.attrs) == 0 {
		if r.store.(*bddStore).root == bdd.True {
			fn(nil)
		}
		return
	}
	r.store.iterate(r.attrs, r.supportVars(), fn)
}

// Tuples materializes the relation as a slice (tests and small outputs
// only; context-sensitive relations can hold 10^14 tuples).
func (r *Relation) Tuples() [][]uint64 {
	var out [][]uint64
	r.Iterate(func(vals []uint64) bool {
		out = append(out, append([]uint64(nil), vals...))
		return true
	})
	// Iterate yields representation order (BDD variable order vs sorted
	// rows); sort so dumps and APIs read identically across backends.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// String renders the schema, for diagnostics.
func (r *Relation) String() string {
	parts := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		parts[i] = fmt.Sprintf("%s:%s@%s", a.Name, a.Dom.Name, a.Phys.Name)
	}
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(parts, ","))
}
