package rel

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"bddbddb/internal/bdd"
)

// Attr binds an attribute name to a logical domain and the physical
// instance holding its bits.
type Attr struct {
	Name string
	Dom  *LogicalDomain
	Phys *bdd.Domain
}

// A returns an attribute of the named logical domain bound to physical
// instance inst.
func (u *Universe) A(attrName, domName string, inst int) Attr {
	d := u.logical[domName]
	if d == nil {
		panic(fmt.Sprintf("rel: unknown domain %q", domName))
	}
	return Attr{Name: attrName, Dom: d, Phys: u.Phys(domName, inst)}
}

// Relation is a set of tuples over named attributes, stored as a BDD.
// All mutating and deriving operations keep the underlying BDD node
// referenced; call Free when a relation is no longer needed.
type Relation struct {
	u      *Universe
	Name   string
	attrs  []Attr
	root   bdd.Node
	frozen bool
}

// NewRelation creates an empty relation. Attribute names must be unique
// and no two attributes may share a physical domain.
func (u *Universe) NewRelation(name string, attrs ...Attr) *Relation {
	if !u.final {
		panic("rel: NewRelation before Finalize")
	}
	checkAttrs(name, attrs)
	return &Relation{u: u, Name: name, attrs: append([]Attr(nil), attrs...), root: u.M.Ref(bdd.False)}
}

// NewRelationFromBDD wraps an already-referenced BDD node as a relation;
// the relation takes ownership of the caller's reference.
func (u *Universe) NewRelationFromBDD(name string, root bdd.Node, attrs ...Attr) *Relation {
	checkAttrs(name, attrs)
	return &Relation{u: u, Name: name, attrs: append([]Attr(nil), attrs...), root: root}
}

func checkAttrs(name string, attrs []Attr) {
	seenName := make(map[string]bool)
	seenPhys := make(map[*bdd.Domain]string)
	for _, a := range attrs {
		if a.Phys == nil || a.Dom == nil {
			panic(fmt.Sprintf("rel: relation %s has incomplete attribute %q", name, a.Name))
		}
		if seenName[a.Name] {
			panic(fmt.Sprintf("rel: relation %s repeats attribute %q", name, a.Name))
		}
		seenName[a.Name] = true
		if prev, ok := seenPhys[a.Phys]; ok {
			panic(fmt.Sprintf("rel: relation %s binds attributes %q and %q to one physical domain %s",
				name, prev, a.Name, a.Phys.Name))
		}
		seenPhys[a.Phys] = a.Name
	}
}

// Attrs returns the relation's attributes.
func (r *Relation) Attrs() []Attr { return r.attrs }

// Attr returns the attribute with the given name.
func (r *Relation) Attr(name string) Attr {
	for _, a := range r.attrs {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("rel: relation %s has no attribute %q (has %s)", r.Name, name, r.attrNames()))
}

// HasAttr reports whether the relation has an attribute with the name.
func (r *Relation) HasAttr(name string) bool {
	for _, a := range r.attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

func (r *Relation) attrNames() string {
	names := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// Root exposes the underlying BDD node (still owned by the relation).
func (r *Relation) Root() bdd.Node { return r.root }

// Freeze marks the relation immutable: AddTuple, UnionWith, and Free
// panic afterwards. Deriving operations (Join, SelectEq, ...) stay
// legal — they allocate new relations and never touch the receiver.
// The serving layer freezes solved relations before handing them to
// concurrent query evaluation; there is no Unfreeze.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether Freeze was called.
func (r *Relation) Frozen() bool { return r.frozen }

func (r *Relation) requireMutable(op string) {
	if r.frozen {
		panic(fmt.Sprintf("rel: %s on frozen relation %s", op, r.Name))
	}
}

// Free releases the relation's BDD reference. The relation must not be
// used afterwards.
func (r *Relation) Free() {
	r.requireMutable("Free")
	r.u.M.Deref(r.root)
	r.root = bdd.False
	r.attrs = nil
}

// Clone returns an independent copy sharing the same tuples.
func (r *Relation) Clone(name string) *Relation {
	return &Relation{u: r.u, Name: name, attrs: append([]Attr(nil), r.attrs...), root: r.u.M.Ref(r.root)}
}

// AddTuple inserts one tuple, with values listed in attribute order.
func (r *Relation) AddTuple(vals ...uint64) {
	r.requireMutable("AddTuple")
	if len(vals) != len(r.attrs) {
		panic(fmt.Sprintf("rel: AddTuple(%v) into %s(%s)", vals, r.Name, r.attrNames()))
	}
	m := r.u.M
	cube := m.Ref(bdd.True)
	for i, a := range r.attrs {
		if vals[i] >= a.Dom.Size {
			panic(fmt.Sprintf("rel: value %d exceeds domain %s (size %d) in %s.%s",
				vals[i], a.Dom.Name, a.Dom.Size, r.Name, a.Name))
		}
		eq := a.Phys.Eq(vals[i])
		next := m.And(cube, eq)
		m.Deref(cube)
		m.Deref(eq)
		cube = next
	}
	next := m.Or(r.root, cube)
	m.Deref(r.root)
	m.Deref(cube)
	r.root = next
}

func (r *Relation) sameSchema(o *Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for _, a := range r.attrs {
		found := false
		for _, b := range o.attrs {
			if a.Name == b.Name {
				if a.Phys != b.Phys {
					return false
				}
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (r *Relation) requireSameSchema(o *Relation, op string) {
	if !r.sameSchema(o) {
		panic(fmt.Sprintf("rel: %s of %s(%s) and %s(%s): schemas differ",
			op, r.Name, r.attrNames(), o.Name, o.attrNames()))
	}
}

// UnionWith adds all of o's tuples to r in place and reports whether r
// changed.
func (r *Relation) UnionWith(o *Relation) bool {
	r.requireMutable("UnionWith")
	r.requireSameSchema(o, "union")
	m := r.u.M
	next := m.Or(r.root, o.root)
	changed := next != r.root
	m.Deref(r.root)
	r.root = next
	return changed
}

// Union returns a new relation with the tuples of both operands.
func (r *Relation) Union(name string, o *Relation) *Relation {
	r.requireSameSchema(o, "union")
	return &Relation{u: r.u, Name: name, attrs: append([]Attr(nil), r.attrs...), root: r.u.M.Or(r.root, o.root)}
}

// Minus returns the tuples of r that are not in o.
func (r *Relation) Minus(name string, o *Relation) *Relation {
	r.requireSameSchema(o, "difference")
	return &Relation{u: r.u, Name: name, attrs: append([]Attr(nil), r.attrs...), root: r.u.M.Diff(r.root, o.root)}
}

// joinAttrs computes the result schema of a natural join and validates
// physical alignment: shared attribute names must share a physical
// domain; attributes private to one side must not collide physically.
func joinAttrs(a, b *Relation, op string) (shared []string, result []Attr) {
	result = append(result, a.attrs...)
	for _, battr := range b.attrs {
		if a.HasAttr(battr.Name) {
			aattr := a.Attr(battr.Name)
			if aattr.Phys != battr.Phys {
				panic(fmt.Sprintf("rel: %s of %s and %s: attribute %q on %s vs %s (rename first)",
					op, a.Name, b.Name, battr.Name, aattr.Phys.Name, battr.Phys.Name))
			}
			shared = append(shared, battr.Name)
			continue
		}
		for _, aattr := range a.attrs {
			if aattr.Phys == battr.Phys {
				panic(fmt.Sprintf("rel: %s of %s and %s: attributes %q and %q collide on %s",
					op, a.Name, b.Name, aattr.Name, battr.Name, battr.Phys.Name))
			}
		}
		result = append(result, battr)
	}
	return shared, result
}

// Join returns the natural join of r and o on their shared attribute
// names (a BDD AND once aligned).
func (r *Relation) Join(name string, o *Relation) *Relation {
	_, attrs := joinAttrs(r, o, "join")
	return &Relation{u: r.u, Name: name, attrs: attrs, root: r.u.M.And(r.root, o.root)}
}

// JoinProject joins r and o and projects away the named attributes in
// one BDD relprod (AndExist) pass — the workhorse of rule application.
func (r *Relation) JoinProject(name string, o *Relation, drop ...string) *Relation {
	_, attrs := joinAttrs(r, o, "join")
	m := r.u.M
	var keep []Attr
	var dropLevels []int32
	for _, a := range attrs {
		dropped := false
		for _, d := range drop {
			if a.Name == d {
				dropped = true
				break
			}
		}
		if dropped {
			dropLevels = append(dropLevels, a.Phys.Levels()...)
		} else {
			keep = append(keep, a)
		}
	}
	for _, d := range drop {
		found := false
		for _, a := range attrs {
			if a.Name == d {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("rel: JoinProject drops unknown attribute %q", d))
		}
	}
	vs := m.MakeSet(dropLevels)
	root := m.AndExist(r.root, o.root, vs)
	m.Deref(vs)
	return &Relation{u: r.u, Name: name, attrs: keep, root: root}
}

// ProjectOut removes the named attributes (existential quantification).
func (r *Relation) ProjectOut(name string, drop ...string) *Relation {
	m := r.u.M
	var keep []Attr
	var dropLevels []int32
	for _, a := range r.attrs {
		dropped := false
		for _, d := range drop {
			if a.Name == d {
				dropped = true
				break
			}
		}
		if dropped {
			dropLevels = append(dropLevels, a.Phys.Levels()...)
		} else {
			keep = append(keep, a)
		}
	}
	for _, d := range drop {
		if !r.HasAttr(d) {
			panic(fmt.Sprintf("rel: ProjectOut of unknown attribute %q from %s", d, r.Name))
		}
	}
	vs := m.MakeSet(dropLevels)
	root := m.Exist(r.root, vs)
	m.Deref(vs)
	return &Relation{u: r.u, Name: name, attrs: keep, root: root}
}

// Rename returns r with some attributes rebound to different physical
// instances (one BDD replace). The map keys are attribute names.
func (r *Relation) Rename(name string, moves map[string]*bdd.Domain) *Relation {
	m := r.u.M
	p := m.NewPair()
	attrs := append([]Attr(nil), r.attrs...)
	for i := range attrs {
		to, ok := moves[attrs[i].Name]
		if !ok || to == attrs[i].Phys {
			continue
		}
		p.SetDomains(attrs[i].Phys, to)
		attrs[i].Phys = to
	}
	for n := range moves {
		if !r.HasAttr(n) {
			panic(fmt.Sprintf("rel: Rename of unknown attribute %q in %s", n, r.Name))
		}
	}
	root := m.Replace(r.root, p)
	res := &Relation{u: r.u, Name: name, attrs: attrs, root: root}
	checkAttrs(name, attrs)
	return res
}

// RenameAttr returns r with one attribute renamed (metadata only; the
// tuples and physical binding are unchanged).
func (r *Relation) RenameAttr(name, oldAttr, newAttr string) *Relation {
	attrs := append([]Attr(nil), r.attrs...)
	found := false
	for i := range attrs {
		if attrs[i].Name == oldAttr {
			attrs[i].Name = newAttr
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("rel: RenameAttr of unknown attribute %q in %s", oldAttr, r.Name))
	}
	checkAttrs(name, attrs)
	return &Relation{u: r.u, Name: name, attrs: attrs, root: r.u.M.Ref(r.root)}
}

// SelectEq returns the tuples whose attribute equals val (attribute
// retained; ProjectOut to drop it).
func (r *Relation) SelectEq(name, attr string, val uint64) *Relation {
	a := r.Attr(attr)
	if val >= a.Dom.Size {
		panic(fmt.Sprintf("rel: SelectEq value %d outside domain %s", val, a.Dom.Name))
	}
	m := r.u.M
	eq := a.Phys.Eq(val)
	root := m.And(r.root, eq)
	m.Deref(eq)
	return &Relation{u: r.u, Name: name, attrs: append([]Attr(nil), r.attrs...), root: root}
}

// Complement returns the tuples over the attributes' domains that are
// NOT in r — negation relative to the finite universe of the schema,
// used by stratified Datalog negation.
func (r *Relation) Complement(name string) *Relation {
	m := r.u.M
	root := m.Not(r.root)
	for _, a := range r.attrs {
		c := a.Phys.DomainConstraint()
		next := m.And(root, c)
		m.Deref(root)
		m.Deref(c)
		root = next
	}
	return &Relation{u: r.u, Name: name, attrs: append([]Attr(nil), r.attrs...), root: root}
}

// SameSchemaAs reports whether both relations bind the same attribute
// names to the same physical domains (tuple order notwithstanding).
func (r *Relation) SameSchemaAs(o *Relation) bool { return r.sameSchema(o) }

// IsEmpty reports whether the relation has no tuples.
func (r *Relation) IsEmpty() bool { return r.root == bdd.False }

// SameTuples reports whether two relations over the same schema hold
// exactly the same tuples (constant time: BDDs are canonical).
func (r *Relation) SameTuples(o *Relation) bool {
	r.requireSameSchema(o, "comparison")
	return r.root == o.root
}

// Size returns the exact tuple count.
func (r *Relation) Size() *big.Int {
	if len(r.attrs) == 0 {
		if r.root == bdd.True {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	return r.u.M.SatCountIn(r.root, r.supportVars())
}

// SizeFloat returns the tuple count as a float64 — the lossy form the
// Datalog planner's cost model consumes. Use Size for exact counts.
func (r *Relation) SizeFloat() float64 {
	f, _ := new(big.Float).SetInt(r.Size()).Float64()
	return f
}

func (r *Relation) supportVars() []int32 {
	var vars []int32
	for _, a := range r.attrs {
		vars = append(vars, a.Phys.Levels()...)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// Iterate calls fn for every tuple (values in attribute order) until it
// returns false. Enumeration order is deterministic.
func (r *Relation) Iterate(fn func(vals []uint64) bool) {
	if len(r.attrs) == 0 {
		if r.root == bdd.True {
			fn(nil)
		}
		return
	}
	vars := r.supportVars()
	vals := make([]uint64, len(r.attrs))
	r.u.M.AllSat(r.root, vars, func(bits []bool) bool {
		for i, a := range r.attrs {
			vals[i] = a.Phys.Value(vars, bits)
		}
		return fn(vals)
	})
}

// Tuples materializes the relation as a slice (tests and small outputs
// only; context-sensitive relations can hold 10^14 tuples).
func (r *Relation) Tuples() [][]uint64 {
	var out [][]uint64
	r.Iterate(func(vals []uint64) bool {
		out = append(out, append([]uint64(nil), vals...))
		return true
	})
	return out
}

// String renders the schema, for diagnostics.
func (r *Relation) String() string {
	parts := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		parts[i] = fmt.Sprintf("%s:%s@%s", a.Name, a.Dom.Name, a.Phys.Name)
	}
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(parts, ","))
}
