package rel

import (
	"math/big"
	"strings"
	"testing"

	"bddbddb/internal/bdd"
)

func TestNewRelationFromBDDTakesOwnership(t *testing.T) {
	u := testUniverse(t)
	eq := u.Phys("V", 0).Eq(7)
	r := u.NewRelationFromBDD("wrapped", eq, u.A("v", "V", 0))
	want := tupleSet{}
	want.add(7)
	requireTuples(t, r, want)
	r.Free() // releases the wrapped reference
	u.GC()
}

func TestReshapeRenameAndRebindAtOnce(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "H", 0))
	r.AddTuple(3, 4)
	s := r.Reshape("s", map[string]Remap{
		"a": {NewName: "x", NewPhys: u.Phys("V", 1)},
		"b": {NewName: "y"},
	})
	if !s.HasAttr("x") || !s.HasAttr("y") || s.Attr("x").Phys != u.Phys("V", 1) {
		t.Fatalf("reshape schema wrong: %s", s)
	}
	want := tupleSet{}
	want.add(3, 4)
	requireTuples(t, s, want)
}

func TestReshapeUnknownAttrPanics(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Reshape("s", map[string]Remap{"nope": {NewName: "x"}})
}

func TestSelectEqualAttrs(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "V", 1))
	r.AddTuple(1, 1)
	r.AddTuple(1, 2)
	r.AddTuple(5, 5)
	eq := r.SelectEqualAttrs("eq", "a", "b")
	want := tupleSet{}
	want.add(1, 1)
	want.add(5, 5)
	requireTuples(t, eq, want)
}

func TestSelectEqualAttrsCrossDomainPanics(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("a", "V", 0), u.A("b", "H", 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.SelectEqualAttrs("eq", "a", "b")
}

func TestFullDomainAndSingleton(t *testing.T) {
	u := testUniverse(t)
	full := u.FullDomain("full", u.A("h", "H", 0))
	if full.Size().Cmp(big.NewInt(10)) != 0 {
		t.Fatalf("full domain size %s", full.Size())
	}
	single := u.Singleton("one", u.A("h", "H", 0), 9)
	want := tupleSet{}
	want.add(9)
	requireTuples(t, single, want)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-domain singleton accepted")
			}
		}()
		u.Singleton("bad", u.A("h", "H", 0), 10)
	}()
}

func TestElemNames(t *testing.T) {
	u := NewUniverse()
	d := u.Declare("T", 4)
	d.SetElemNames([]string{"Object", "String"})
	if d.ElemName(1) != "String" {
		t.Fatalf("ElemName(1) = %q", d.ElemName(1))
	}
	if d.ElemName(3) != "T#3" {
		t.Fatalf("ElemName(3) = %q", d.ElemName(3))
	}
}

func TestUniverseAccessors(t *testing.T) {
	u := testUniverse(t)
	if u.Domain("V") == nil || u.Domain("nope") != nil {
		t.Fatal("Domain lookup broken")
	}
	ds := u.Domains()
	if len(ds) != 3 || ds[0].Name != "V" {
		t.Fatalf("Domains() = %v", ds)
	}
	if u.Domain("V").Instances() != 3 {
		t.Fatalf("V instances = %d", u.Domain("V").Instances())
	}
}

func TestStringRendersSchema(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("vP", u.A("v", "V", 0), u.A("h", "H", 0))
	s := r.String()
	if !strings.Contains(s, "vP(") || !strings.Contains(s, "v:V@V0") {
		t.Fatalf("String() = %q", s)
	}
}

func TestPhysPanicsOutOfRange(t *testing.T) {
	u := testUniverse(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing instance")
		}
	}()
	u.Phys("H", 5)
}

func TestEnsureInstancesValidation(t *testing.T) {
	u := NewUniverse()
	u.Declare("A", 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown domain accepted")
			}
		}()
		u.EnsureInstances("B", 2)
	}()
	if err := u.Finalize(FinalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EnsureInstances after Finalize accepted")
			}
		}()
		u.EnsureInstances("A", 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Declare after Finalize accepted")
			}
		}()
		u.Declare("C", 2)
	}()
}

func TestSizeOfLargeSparseRelation(t *testing.T) {
	// Size must be exact even when the tuple count is astronomically
	// larger than anything enumerable: a full 2^40-element product.
	u := NewUniverse()
	u.Declare("C", 1<<40)
	u.EnsureInstances("C", 2)
	if err := u.Finalize(FinalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	a := u.A("x", "C", 0)
	b := u.A("y", "C", 1)
	full := u.FullDomain("fx", a).Join("fxy", u.FullDomain("fy", b))
	want := new(big.Int).Lsh(big.NewInt(1), 80)
	if full.Size().Cmp(want) != 0 {
		t.Fatalf("Size = %s, want 2^80", full.Size())
	}
}

func TestIterateNullaryAndEarlyStop(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0))
	for v := uint64(0); v < 5; v++ {
		r.AddTuple(v)
	}
	n := 0
	r.Iterate(func([]uint64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop saw %d tuples", n)
	}
}

func TestRenameNoopKeepsRoot(t *testing.T) {
	u := testUniverse(t)
	r := u.NewRelation("r", u.A("v", "V", 0))
	r.AddTuple(2)
	same := r.Rename("same", map[string]*bdd.Domain{"v": u.Phys("V", 0)})
	if same.Root() != r.Root() {
		t.Fatal("no-op rename changed the BDD")
	}
}
