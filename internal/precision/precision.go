// Package precision is the mode-comparison engine: it runs one program
// under several sensitivity modes ({ci, cs, heap-cs}) and reports the
// measured precision deltas — projected points-to set sizes, alias-pair
// counts, and the downcast/nil proxies — next to each mode's cost. New
// sensitivity modes are justified by these numbers, not asserted: the
// claim "heap cloning is more precise" appears here as a strictly
// smaller average points-to set on a real workload, or not at all.
//
// Every count is derived from projected (variable, heap) pairs, so the
// modes compare on the exact query surface the serving layer exposes.
// Reports are deterministic for a fixed workload: all slices are
// sorted, no map iteration order leaks into the output.
package precision

import (
	"fmt"
	"io"
	"sort"

	"bddbddb/internal/analysis"
	"bddbddb/internal/callgraph"
	"bddbddb/internal/extract"
)

// Mode names, in canonical comparison order.
const (
	ModeCI     = "ci"      // Algorithm 3 (context-insensitive, on-the-fly call graph)
	ModeCS     = "cs"      // Algorithm 5 (call-path cloning)
	ModeHeapCS = "heap-cs" // Algorithm 8 (call-path + heap cloning)
)

// Options tunes a comparison.
type Options struct {
	// Modes lists the modes to run, in order. Nil means {ci, cs, heap-cs}.
	Modes []string
	// HeapLabel overrides the heap-object display label (defaults to the
	// extracted name). cmd/gopointsto passes its file:line-based labeler
	// so /precision output and -report output agree.
	HeapLabel func(h int) string
	// VarLabel overrides the variable display label likewise.
	VarLabel func(v int) string
	// NilReport, when set, counts a frontend's nil-dereference reports
	// for one mode's projected pairs (cmd/gopointsto wires its nil
	// report in). Modes record -1 when unset.
	NilReport func(pairs map[[2]uint64]bool) int
	// TopShrunk caps the per-variable delta list (0 means 10).
	TopShrunk int
}

// ModeMetrics is one mode's measured precision and cost.
type ModeMetrics struct {
	Mode string `json:"mode"`

	// Precision counters over projected (variable, heap) pairs.
	Pairs         int     `json:"pairs"`           // projected points-to pairs
	PointedVars   int     `json:"pointed_vars"`    // variables with a nonempty set
	EmptyVars     int     `json:"empty_vars"`      // extracted variables with an empty set (nil proxy)
	AvgPointsTo   float64 `json:"avg_points_to"`   // pairs / pointed vars
	MaxPointsTo   int     `json:"max_points_to"`   // largest single set
	AliasPairs    int     `json:"alias_pairs"`     // distinct variable pairs sharing a heap object
	MultiTypeVars int     `json:"multi_type_vars"` // variables pointing to >1 type (downcast proxy)
	NilReports    int     `json:"nil_reports"`     // frontend nil reports (-1 when no frontend hook)

	// Cost, from the solver stats. Degraded marks a budget fallback —
	// the numbers then describe the degraded (ci) answer.
	SolveMS       float64 `json:"solve_ms"`
	PeakLiveNodes int     `json:"peak_live_nodes"`
	Degraded      bool    `json:"degraded"`
}

// Delta is the precision movement between two modes.
type Delta struct {
	From              string  `json:"from"`
	To                string  `json:"to"`
	PairsRemoved      int     `json:"pairs_removed"`
	AvgFrom           float64 `json:"avg_from"`
	AvgTo             float64 `json:"avg_to"`
	AliasPairsRemoved int     `json:"alias_pairs_removed"`
	MultiTypeRemoved  int     `json:"multi_type_removed"`
}

// VarDelta is one variable whose points-to set shrank under heap
// cloning, with the heap objects the refinement removed.
type VarDelta struct {
	Var     string   `json:"var"`
	CS      int      `json:"cs"`
	HeapCS  int      `json:"heap_cs"`
	Removed []string `json:"removed"` // dropped heap labels (capped at 5)
}

// Report is a full mode comparison over one workload.
type Report struct {
	Workload string `json:"workload"`

	// Heap-cloning shape (from the heap-cs run; zero when it didn't run).
	HeapContexts  uint64 `json:"heap_contexts"`  // largest heap-context value in cvP
	ClonedSites   int    `json:"cloned_sites"`   // |heapCloned|
	UnclonedSites int    `json:"uncloned_sites"` // sites kept context-insensitive

	Modes     []ModeMetrics `json:"modes"`
	Deltas    []Delta       `json:"deltas"`
	TopShrunk []VarDelta    `json:"top_shrunk,omitempty"` // cs → heap-cs, largest reductions first
}

// WriteText renders the report's deterministic view — every counter,
// no costs — one workload block per call. Two runs of the same
// workload must render identically; CI diffs this output to catch
// nondeterminism in the comparison pipeline.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "workload %s: heap contexts %d, cloned sites %d, uncloned %d\n",
		r.Workload, r.HeapContexts, r.ClonedSites, r.UnclonedSites)
	for _, m := range r.Modes {
		fmt.Fprintf(w, "  %-8s pairs %d, vars %d, avg %.3f, max %d, alias pairs %d, multi-type %d, empty %d",
			m.Mode, m.Pairs, m.PointedVars, m.AvgPointsTo, m.MaxPointsTo, m.AliasPairs, m.MultiTypeVars, m.EmptyVars)
		if m.NilReports >= 0 {
			fmt.Fprintf(w, ", nil reports %d", m.NilReports)
		}
		if m.Degraded {
			fmt.Fprint(w, " (degraded)")
		}
		fmt.Fprintln(w)
	}
	for _, d := range r.Deltas {
		fmt.Fprintf(w, "  %s -> %s: -%d pairs (avg %.3f -> %.3f), -%d alias pairs, -%d multi-type vars\n",
			d.From, d.To, d.PairsRemoved, d.AvgFrom, d.AvgTo, d.AliasPairsRemoved, d.MultiTypeRemoved)
	}
	for _, v := range r.TopShrunk {
		fmt.Fprintf(w, "  shrunk %s: %d -> %d, removed %v\n", v.Var, v.CS, v.HeapCS, v.Removed)
	}
}

// Metrics flattens the report into the dotted-key map of the
// BENCH_*.json trajectory format: "precision.<workload>.<mode>.<metric>".
func (r *Report) Metrics() map[string]float64 {
	m := make(map[string]float64)
	p := "precision." + r.Workload + "."
	m[p+"heap_contexts"] = float64(r.HeapContexts)
	m[p+"cloned_sites"] = float64(r.ClonedSites)
	for _, mm := range r.Modes {
		q := p + mm.Mode + "."
		m[q+"pairs"] = float64(mm.Pairs)
		m[q+"avg_points_to"] = mm.AvgPointsTo
		m[q+"alias_pairs"] = float64(mm.AliasPairs)
		m[q+"multi_type_vars"] = float64(mm.MultiTypeVars)
		m[q+"solve_ms"] = mm.SolveMS
		m[q+"peak_live_nodes"] = float64(mm.PeakLiveNodes)
	}
	return m
}

// Compare runs the program under every requested mode and measures the
// precision deltas. cfg is cloned per run; the call graph discovered by
// the ci mode is reused by the cloning modes.
func Compare(workload string, f *extract.Facts, cfg analysis.Config, opts Options) (*Report, error) {
	modes := opts.Modes
	if modes == nil {
		modes = []string{ModeCI, ModeCS, ModeHeapCS}
	}
	rep := &Report{Workload: workload}
	byMode := make(map[string]map[[2]uint64]bool)
	heapType := heapTypes(f)
	var graph = (*analysis.Result)(nil)
	for _, mode := range modes {
		var r *analysis.Result
		var err error
		switch mode {
		case ModeCI:
			r, err = analysis.RunOnTheFly(f, cfg)
			if err == nil && graph == nil {
				r.Graph = analysis.GraphFromIE(f, r.Solver.Relation("IE"))
				graph = r
			}
		case ModeCS:
			r, err = analysis.RunContextSensitive(f, sharedGraph(graph), cfg)
		case ModeHeapCS:
			r, err = analysis.RunHeapCloned(f, sharedGraph(graph), cfg)
		default:
			return nil, fmt.Errorf("precision: unknown mode %q", mode)
		}
		if err != nil {
			return nil, fmt.Errorf("precision: mode %s: %w", mode, err)
		}
		pairs := r.PointsToPairs()
		byMode[mode] = pairs
		rep.Modes = append(rep.Modes, measure(mode, r, pairs, f, heapType, opts))
		if mode == ModeHeapCS && !r.Degraded {
			rep.HeapContexts, rep.ClonedSites, rep.UnclonedSites = heapShape(r, f)
		}
	}
	for i := 1; i < len(rep.Modes); i++ {
		from, to := rep.Modes[i-1], rep.Modes[i]
		rep.Deltas = append(rep.Deltas, Delta{
			From: from.Mode, To: to.Mode,
			PairsRemoved:      from.Pairs - to.Pairs,
			AvgFrom:           from.AvgPointsTo,
			AvgTo:             to.AvgPointsTo,
			AliasPairsRemoved: from.AliasPairs - to.AliasPairs,
			MultiTypeRemoved:  from.MultiTypeVars - to.MultiTypeVars,
		})
	}
	if cs, hcs := byMode[ModeCS], byMode[ModeHeapCS]; cs != nil && hcs != nil {
		rep.TopShrunk = topShrunk(cs, hcs, f, opts)
	}
	return rep, nil
}

// sharedGraph extracts the reusable call graph from the ci result.
func sharedGraph(ci *analysis.Result) *callgraph.Graph {
	if ci == nil {
		return nil
	}
	return ci.Graph
}

func heapTypes(f *extract.Facts) map[uint64]uint64 {
	ht := make(map[uint64]uint64, len(f.HT))
	for _, t := range f.HT {
		ht[t[0]] = t[1]
	}
	return ht
}

// measure computes one mode's metrics from its projected pairs.
func measure(mode string, r *analysis.Result, pairs map[[2]uint64]bool, f *extract.Facts, heapType map[uint64]uint64, opts Options) ModeMetrics {
	perVar := make(map[uint64]int)
	varTypes := make(map[uint64]map[uint64]bool)
	byHeap := make(map[uint64][]uint64)
	for p := range pairs {
		v, h := p[0], p[1]
		perVar[v]++
		if t, ok := heapType[h]; ok {
			if varTypes[v] == nil {
				varTypes[v] = make(map[uint64]bool)
			}
			varTypes[v][t] = true
		}
		byHeap[h] = append(byHeap[h], v)
	}
	m := ModeMetrics{Mode: mode, Pairs: len(pairs), PointedVars: len(perVar), NilReports: -1, Degraded: r.Degraded}
	for _, n := range perVar {
		if n > m.MaxPointsTo {
			m.MaxPointsTo = n
		}
	}
	if m.PointedVars > 0 {
		m.AvgPointsTo = float64(m.Pairs) / float64(m.PointedVars)
	}
	m.EmptyVars = len(f.Vars) - m.PointedVars
	for _, ts := range varTypes {
		if len(ts) > 1 {
			m.MultiTypeVars++
		}
	}
	m.AliasPairs = aliasPairs(byHeap)
	if opts.NilReport != nil {
		m.NilReports = opts.NilReport(pairs)
	}
	st := r.Stats()
	m.SolveMS = float64(st.SolveTime.Microseconds()) / 1000
	m.PeakLiveNodes = st.PeakLiveNodes
	return m
}

// aliasPairs counts distinct unordered variable pairs that share at
// least one heap target. Exact — the comparison workloads are small;
// the count is order-independent by construction (a set keyed on the
// ordered pair), so reports stay deterministic.
func aliasPairs(byHeap map[uint64][]uint64) int {
	seen := make(map[[2]uint64]bool)
	for _, vars := range byHeap {
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				a, b := vars[i], vars[j]
				if a > b {
					a, b = b, a
				}
				seen[[2]uint64{a, b}] = true
			}
		}
	}
	return len(seen)
}

// heapShape reads the heap-cloning shape off an Algorithm 8 result.
// cvP is context-carrying and can hold astronomically many tuples, so
// the max heap context comes from its projection onto the HC attribute
// (at most |HC| tuples) — never from enumerating cvP itself.
func heapShape(r *analysis.Result, f *extract.Facts) (maxHC uint64, cloned, uncloned int) {
	hcs := r.Solver.Relation("cvP").ProjectOut("precision.hcs", "context", "variable", "heap")
	hcs.Iterate(func(vals []uint64) bool {
		if vals[0] > maxHC {
			maxHC = vals[0]
		}
		return true
	})
	hcs.Free()
	r.Solver.Relation("heapCloned").Iterate(func([]uint64) bool {
		cloned++
		return true
	})
	uncloned = len(f.Heaps) - cloned
	return
}

// topShrunk lists the variables whose projected sets shrank the most
// from cs to heap-cs, with the removed heap objects labeled.
func topShrunk(cs, hcs map[[2]uint64]bool, f *extract.Facts, opts Options) []VarDelta {
	top := opts.TopShrunk
	if top == 0 {
		top = 10
	}
	heapLabel := opts.HeapLabel
	if heapLabel == nil {
		heapLabel = func(h int) string { return f.Heaps[h] }
	}
	varLabel := opts.VarLabel
	if varLabel == nil {
		varLabel = func(v int) string { return f.Vars[v] }
	}
	csSize := make(map[uint64]int)
	hcsSize := make(map[uint64]int)
	for p := range cs {
		csSize[p[0]]++
	}
	for p := range hcs {
		hcsSize[p[0]]++
	}
	type cand struct {
		v        uint64
		from, to int
	}
	var cands []cand
	for v, n := range csSize {
		if m := hcsSize[v]; m < n {
			cands = append(cands, cand{v, n, m})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		di, dj := cands[i].from-cands[i].to, cands[j].from-cands[j].to
		if di != dj {
			return di > dj
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > top {
		cands = cands[:top]
	}
	out := make([]VarDelta, 0, len(cands))
	for _, c := range cands {
		vd := VarDelta{Var: varLabel(int(c.v)), CS: c.from, HeapCS: c.to}
		var removed []uint64
		for p := range cs {
			if p[0] == c.v && !hcs[p] {
				removed = append(removed, p[1])
			}
		}
		sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
		if len(removed) > 5 {
			removed = removed[:5]
		}
		for _, h := range removed {
			vd.Removed = append(vd.Removed, heapLabel(int(h)))
		}
		out = append(out, vd)
	}
	return out
}
