package precision

import (
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

// FactorySrc is the canonical heap-cloning demonstration workload (the
// factory pattern): one factory method called twice. Call-path cloning
// distinguishes the two mkBox invocations but still conflates the two
// Box objects — both calls allocate the same heap object, so the two
// boxes' contents fields share storage and take() reads both Items.
// Heap cloning keeps them apart; Compare on this workload must show
// heap-cs strictly more precise than cs.
const FactorySrc = `
entry Main.main

class Item {
}

class Box {
    field contents
    method put(v: Item) {
        this.contents = v
    }
    method take() returns r: Item {
        r = this.contents
        return r
    }
}

class Factory {
    static method mkBox() returns r: Box {
        r = new Box
        return r
    }
}

class Main {
    static method main(args) {
        var b1: Box
        var b2: Box
        var i1: Item
        var i2: Item
        var got: Item
        b1 = Factory::mkBox()
        b2 = Factory::mkBox()
        i1 = new Item
        i2 = new Item
        b1.put(i1)
        b2.put(i2)
        got = b1.take()
    }
}
`

// FactoryFacts extracts the factory workload.
func FactoryFacts() (*extract.Facts, error) {
	prog, err := program.Parse(FactorySrc)
	if err != nil {
		return nil, err
	}
	return extract.Extract(prog, extract.Options{})
}
