package precision

import (
	"strings"
	"testing"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/synth"
)

func modeByName(t *testing.T, rep *Report, mode string) ModeMetrics {
	t.Helper()
	for _, m := range rep.Modes {
		if m.Mode == mode {
			return m
		}
	}
	t.Fatalf("mode %s missing from report", mode)
	return ModeMetrics{}
}

func TestCompareFactory(t *testing.T) {
	f, err := FactoryFacts()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare("factory", f, analysis.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci := modeByName(t, rep, ModeCI)
	cs := modeByName(t, rep, ModeCS)
	hcs := modeByName(t, rep, ModeHeapCS)
	// The monotone refinement ladder, strict on the heap-cloning step:
	// this workload exists to prove Algorithm 8 earns its cost.
	if cs.Pairs > ci.Pairs {
		t.Fatalf("cs pairs %d > ci pairs %d", cs.Pairs, ci.Pairs)
	}
	if hcs.Pairs >= cs.Pairs {
		t.Fatalf("heap-cs pairs %d not strictly below cs pairs %d", hcs.Pairs, cs.Pairs)
	}
	if hcs.AvgPointsTo >= cs.AvgPointsTo {
		t.Fatalf("heap-cs avg %.3f not strictly below cs avg %.3f", hcs.AvgPointsTo, cs.AvgPointsTo)
	}
	if hcs.AliasPairs >= cs.AliasPairs {
		t.Fatalf("heap-cs alias pairs %d not strictly below cs %d", hcs.AliasPairs, cs.AliasPairs)
	}
	if rep.HeapContexts < 2 {
		t.Fatalf("heap contexts = %d, want >= 2", rep.HeapContexts)
	}
	if rep.ClonedSites == 0 {
		t.Fatal("no cloned sites recorded")
	}
	if len(rep.Deltas) != 2 || rep.Deltas[1].PairsRemoved <= 0 {
		t.Fatalf("deltas = %+v", rep.Deltas)
	}
	if len(rep.TopShrunk) == 0 {
		t.Fatal("no shrunk variables listed")
	}
	vd := rep.TopShrunk[0]
	if vd.CS <= vd.HeapCS || len(vd.Removed) == 0 {
		t.Fatalf("top shrunk entry = %+v", vd)
	}
}

// TestCompareDeterministic pins the CI determinism gate's contract: two
// full comparisons of the same workload render the identical text view.
func TestCompareDeterministic(t *testing.T) {
	prog := synth.Generate(synth.Quick)
	f, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		rep, err := Compare("quick", f, analysis.Config{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		rep.WriteText(&sb)
		return sb.String()
	}
	first := render()
	if second := render(); second != first {
		t.Fatalf("nondeterministic report:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, "heap-cs") {
		t.Fatalf("report missing heap-cs mode:\n%s", first)
	}
}

func TestCompareLabelsAndHooks(t *testing.T) {
	f, err := FactoryFacts()
	if err != nil {
		t.Fatal(err)
	}
	nilCalls := 0
	rep, err := Compare("factory", f, analysis.Config{}, Options{
		HeapLabel: func(h int) string { return "site:" + f.Heaps[h] },
		NilReport: func(pairs map[[2]uint64]bool) int { nilCalls++; return len(pairs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if nilCalls != len(rep.Modes) {
		t.Fatalf("NilReport called %d times for %d modes", nilCalls, len(rep.Modes))
	}
	for _, m := range rep.Modes {
		if m.NilReports != m.Pairs {
			t.Fatalf("mode %s NilReports = %d, want %d", m.Mode, m.NilReports, m.Pairs)
		}
	}
	for _, vd := range rep.TopShrunk {
		for _, lbl := range vd.Removed {
			if !strings.HasPrefix(lbl, "site:") {
				t.Fatalf("heap label %q did not use the HeapLabel hook", lbl)
			}
		}
	}
}
