package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	m := New()
	c := m.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if m.Counter("x") != c {
		t.Fatal("second lookup returned a different handle")
	}
	if m.Counter("y") == c {
		t.Fatal("distinct names share a handle")
	}
}

func TestGauge(t *testing.T) {
	m := New()
	g := m.Gauge("g")
	if g.Value() != 0 {
		t.Fatalf("zero value = %v, want 0", g.Value())
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("after Set(2.5): %v", g.Value())
	}
	g.SetMax(1.0)
	if g.Value() != 2.5 {
		t.Fatalf("SetMax lowered the gauge: %v", g.Value())
	}
	g.SetMax(7.0)
	if g.Value() != 7.0 {
		t.Fatalf("SetMax(7) = %v", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("Set(-3) = %v", g.Value())
	}
}

func TestTimer(t *testing.T) {
	m := New()
	tm := m.Timer("t")
	tm.Observe(100 * time.Millisecond)
	tm.Observe(150 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", tm.Count())
	}
	if tm.Total() != 250*time.Millisecond {
		t.Fatalf("Total() = %v, want 250ms", tm.Total())
	}
}

func TestSnapshot(t *testing.T) {
	m := New()
	m.Counter("apps").Add(7)
	m.Set("peak", 123)
	m.Timer("solve").Observe(2 * time.Second)
	got := m.Snapshot()
	want := map[string]float64{
		"apps":        7,
		"peak":        123,
		"solve.count": 1,
		"solve.sec":   2,
	}
	if len(got) != len(want) {
		t.Fatalf("Snapshot() = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Snapshot()[%q] = %v, want %v", k, got[k], v)
		}
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the data-race check for the atomic handles and
// the registration mutex.
func TestConcurrentUpdates(t *testing.T) {
	m := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Counter("shared").Inc()
				m.Gauge("high").SetMax(float64(i))
				m.Timer("work").Observe(time.Microsecond)
				m.Counter("mine").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := m.Counter("mine").Value(); got != 2*workers*perWorker {
		t.Errorf("mine = %d, want %d", got, 2*workers*perWorker)
	}
	if got := m.Gauge("high").Value(); got != perWorker-1 {
		t.Errorf("high = %v, want %d", got, perWorker-1)
	}
	if got := m.Timer("work").Count(); got != workers*perWorker {
		t.Errorf("work.count = %d, want %d", got, workers*perWorker)
	}
}

func TestWriteJSON(t *testing.T) {
	m := New()
	m.Counter("b.count").Add(3)
	m.Set("a.ratio", 0.5)
	m.Set("nan", math.NaN())
	m.Set("inf", math.Inf(1))
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, "unit"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Name != "unit" {
		t.Errorf("name = %q", doc.Name)
	}
	if doc.Metrics["b.count"] != 3 || doc.Metrics["a.ratio"] != 0.5 {
		t.Errorf("metrics = %v", doc.Metrics)
	}
	// Non-finite values must be clamped, not emitted as invalid JSON.
	if doc.Metrics["nan"] != 0 || doc.Metrics["inf"] != 0 {
		t.Errorf("non-finite values not clamped: %v", doc.Metrics)
	}
	// Keys are sorted: "a.ratio" is written before "b.count".
	s := buf.String()
	if strings.Index(s, "a.ratio") > strings.Index(s, "b.count") {
		t.Errorf("keys not sorted:\n%s", s)
	}
}
