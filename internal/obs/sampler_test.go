package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerRingBounds(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(time.Hour, 3, func() map[string]float64 {
		return map[string]float64{"seq": float64(n.Add(1))}
	})
	for i := 0; i < 5; i++ {
		s.SampleNow()
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d samples, want 3", len(snap))
	}
	// Oldest-first: the 5 samples were seq 1..5, ring keeps 3..5.
	for i, want := range []float64{3, 4, 5} {
		if got := snap[i].Values["seq"]; got != want {
			t.Errorf("snapshot[%d].seq = %g, want %g", i, got, want)
		}
	}
}

func TestSamplerStartStop(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(5*time.Millisecond, 10, func() map[string]float64 {
		n.Add(1)
		return map[string]float64{"x": 1}
	})
	var hooks atomic.Int64
	s.OnSample(func(SamplePoint) { hooks.Add(1) })
	s.Start()
	// Start takes an immediate sample; wait for at least one more tick.
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if n.Load() < 2 {
		t.Fatalf("source ran %d times, want >= 2", n.Load())
	}
	if hooks.Load() != n.Load() {
		t.Errorf("OnSample ran %d times for %d samples", hooks.Load(), n.Load())
	}
	after := n.Load()
	time.Sleep(20 * time.Millisecond)
	if n.Load() != after {
		t.Errorf("sampler kept running after Stop")
	}
	// A never-started sampler's Stop is a no-op.
	NewSampler(time.Hour, 1, func() map[string]float64 { return nil }).Stop()
}

func TestSamplerWriteJSON(t *testing.T) {
	s := NewSampler(2*time.Second, 4, func() map[string]float64 {
		return map[string]float64{"go.goroutines": 7}
	})
	s.SampleNow()
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"interval_sec":2`, `"samples":[`, `"go.goroutines":7`} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %s:\n%s", want, out)
		}
	}
	// Round-trips through the obsreport reader.
	interval, samples, err := ReadTimeseries(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if interval != 2 || len(samples) != 1 || samples[0].Values["go.goroutines"] != 7 {
		t.Errorf("round-trip: interval=%g samples=%v", interval, samples)
	}
}

func TestSamplerWriteJSONEmpty(t *testing.T) {
	s := NewSampler(time.Second, 1, func() map[string]float64 { return nil })
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"samples":[]`) {
		t.Errorf("empty dump should have an empty array, got %s", sb.String())
	}
}

func TestRuntimeStats(t *testing.T) {
	rt := RuntimeStats()
	if rt["go.goroutines"] < 1 {
		t.Errorf("go.goroutines = %g", rt["go.goroutines"])
	}
	if rt["go.heap_alloc_bytes"] <= 0 {
		t.Errorf("go.heap_alloc_bytes = %g", rt["go.heap_alloc_bytes"])
	}
}

func TestRegistrySource(t *testing.T) {
	reg := New()
	reg.Counter("serve.cache.hits").Add(4)
	reg.Counter("datalog.iterations").Add(9)
	src := RegistrySource(reg, "serve.")
	vals := src()
	if vals["serve.cache.hits"] != 4 {
		t.Errorf("serve.cache.hits = %g, want 4", vals["serve.cache.hits"])
	}
	if _, ok := vals["datalog.iterations"]; ok {
		t.Errorf("prefix filter leaked datalog.iterations")
	}
	if _, ok := vals["go.goroutines"]; !ok {
		t.Errorf("runtime stats not merged")
	}
}

func TestSummarizeSamples(t *testing.T) {
	samples := []SamplePoint{
		{Values: map[string]float64{"a": 1, "b": 10}},
		{Values: map[string]float64{"a": 3, "b": 20}},
		{Values: map[string]float64{"a": 2}},
	}
	sums := SummarizeSamples(samples)
	if len(sums) != 2 || sums[0].Key != "a" || sums[1].Key != "b" {
		t.Fatalf("keys: %+v", sums)
	}
	a := sums[0]
	if a.Min != 1 || a.Max != 3 || a.Mean != 2 || a.Last != 2 || a.Count != 3 {
		t.Errorf("a summary: %+v", a)
	}
}

func TestProgressTracer(t *testing.T) {
	p := NewProgress()
	p.Begin("solve strata")
	p.Begin("stratum 2")
	p.Begin("iteration 5")
	p.Begin("rule 003: vP")
	p.Begin("rule 004: hP")
	p.Begin("op.relprod")
	p.Counter("bdd.live_nodes", map[string]float64{"live": 1234, "table": 8192})
	v := p.Values()
	if v["progress.stratum"] != 2 {
		t.Errorf("stratum = %g, want 2", v["progress.stratum"])
	}
	if v["progress.iteration"] != 5 {
		t.Errorf("iteration = %g, want 5", v["progress.iteration"])
	}
	if v["progress.rule_apps"] != 2 {
		t.Errorf("rule_apps = %g, want 2", v["progress.rule_apps"])
	}
	if v["progress.bdd_live_nodes"] != 1234 {
		t.Errorf("live nodes = %g, want 1234", v["progress.bdd_live_nodes"])
	}
	hb := p.Heartbeat()
	for _, want := range []string{"stratum=2", "iter=5", "rule-apps=2", "live-nodes=1234", "elapsed="} {
		if !strings.Contains(hb, want) {
			t.Errorf("heartbeat missing %q: %s", want, hb)
		}
	}
}

func TestStartHeartbeat(t *testing.T) {
	p := NewProgress()
	var sb syncBuilder
	s := StartHeartbeat(p, &sb, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for sb.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if !strings.Contains(sb.String(), "progress:") {
		t.Errorf("no heartbeat printed: %q", sb.String())
	}
}

// syncBuilder is a strings.Builder safe for the sampler goroutine +
// test goroutine.
type syncBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuilder) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Len()
}

func (b *syncBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
