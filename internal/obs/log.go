package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// LogTracer is a Tracer that prints human-readable phase progress, one
// line per span open/close with nesting shown by indentation — the
// sink behind the commands' -v flag. Counter samples are dropped;
// instants print inline.
type LogTracer struct {
	mu     sync.Mutex
	w      io.Writer
	starts []time.Time
	names  []string
}

// NewLogTracer returns a LogTracer writing to w (typically stderr).
func NewLogTracer(w io.Writer) *LogTracer { return &LogTracer{w: w} }

func (l *LogTracer) indent() string {
	const pad = "  "
	s := ""
	for range l.names {
		s += pad
	}
	return s
}

// Begin implements Tracer.
func (l *LogTracer) Begin(name string, args ...Arg) {
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s> %s%s\n", l.indent(), name, formatArgs(args))
	l.names = append(l.names, name)
	l.starts = append(l.starts, time.Now())
	l.mu.Unlock()
}

// End implements Tracer.
func (l *LogTracer) End(args ...Arg) {
	l.mu.Lock()
	if n := len(l.names); n > 0 {
		name := l.names[n-1]
		d := time.Since(l.starts[n-1])
		l.names = l.names[:n-1]
		l.starts = l.starts[:n-1]
		fmt.Fprintf(l.w, "%s< %s %s%s\n", l.indent(), name, d.Round(10*time.Microsecond), formatArgs(args))
	}
	l.mu.Unlock()
}

// Instant implements Tracer.
func (l *LogTracer) Instant(name string, args ...Arg) {
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s* %s%s\n", l.indent(), name, formatArgs(args))
	l.mu.Unlock()
}

// Counter implements Tracer; samples are not logged (they are too
// frequent for line output — use -trace for them).
func (l *LogTracer) Counter(string, map[string]float64) {}

func formatArgs(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	s := " ("
	for i, a := range args {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", a.Key, a.Value)
	}
	return s + ")"
}
