package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// The flat metrics-JSON format shared by -metrics files and the
// BENCH_*.json trajectory files:
//
//	{
//	  "name": "figure4",
//	  "metrics": {
//	    "freetts.cs_pointer.peak_nodes": 17664,
//	    "freetts.cs_pointer.time_sec": 0.41
//	  }
//	}
//
// Keys are dotted paths sorted lexicographically, one per line, so
// successive snapshots diff cleanly and trend tooling can treat every
// key as an independent series.

// WriteJSON writes the registry's snapshot in the flat metrics format.
func (m *Metrics) WriteJSON(w io.Writer, name string) error {
	return WriteMetricsJSON(w, name, m.Snapshot())
}

// WriteMetricsJSON writes an arbitrary flat name → value map in the
// metrics format. Non-finite values are clamped to 0 (JSON has no
// NaN/Inf).
func WriteMetricsJSON(w io.Writer, name string, values map[string]float64) error {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	bw := bufio.NewWriter(w)
	nameJSON, err := json.Marshal(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "{\n  \"name\": %s,\n  \"metrics\": {", nameJSON)
	for i, k := range keys {
		v := values[k]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		kj, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vj, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprintf(bw, "\n    %s: %s", kj, vj)
	}
	fmt.Fprint(bw, "\n  }\n}\n")
	return bw.Flush()
}
