package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeEventJSON mirrors one trace event for decoding in tests.
type chromeEventJSON struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, buf []byte) []chromeEventJSON {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []chromeEventJSON `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// fakeClock returns a clock that advances 100µs per reading.
func fakeClock() func() time.Duration {
	var ticks int64
	return func() time.Duration {
		ticks++
		return time.Duration(ticks) * 100 * time.Microsecond
	}
}

func TestChromeTraceNesting(t *testing.T) {
	tr := NewChromeTraceClock(fakeClock())
	tr.Begin("outer", A("k", 1))
	tr.Begin("inner")
	tr.Instant("tick")
	tr.End(A("n", 2))
	tr.Counter("live", map[string]float64{"nodes": 10, "cap": 64})
	tr.End()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	var got []string
	for _, e := range evs {
		got = append(got, e.Ph+":"+e.Name)
	}
	want := []string{"B:outer", "B:inner", "i:tick", "E:inner", "C:live", "E:outer"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("events = %v, want %v", got, want)
	}
	// Timestamps are monotonic.
	for i := 1; i < len(evs); i++ {
		if evs[i].Ts < evs[i-1].Ts {
			t.Fatalf("timestamps not monotonic: %d then %d", evs[i-1].Ts, evs[i].Ts)
		}
	}
	// End args land on the closing event of the matching span.
	if evs[3].Args["n"] != float64(2) {
		t.Errorf("inner End args = %v", evs[3].Args)
	}
	if evs[0].Args["k"] != float64(1) {
		t.Errorf("outer Begin args = %v", evs[0].Args)
	}
	if evs[4].Args["nodes"] != float64(10) || evs[4].Args["cap"] != float64(64) {
		t.Errorf("counter args = %v", evs[4].Args)
	}
}

func TestChromeTraceClosesOpenSpans(t *testing.T) {
	tr := NewChromeTraceClock(fakeClock())
	tr.Begin("a")
	tr.Begin("b")
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (2 B + 2 synthesized E)", len(evs))
	}
	// Innermost closes first.
	if evs[2].Ph != "E" || evs[2].Name != "b" || evs[3].Ph != "E" || evs[3].Name != "a" {
		t.Fatalf("synthesized closes wrong: %+v", evs[2:])
	}
}

func TestChromeTraceUnmatchedEnd(t *testing.T) {
	tr := NewChromeTraceClock(fakeClock())
	tr.End() // no open span: dropped, not a panic
	tr.Begin("a")
	tr.End()
	tr.End() // extra: dropped
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	render := func() string {
		tr := NewChromeTraceClock(fakeClock())
		tr.Begin("solve", A("rules", 3))
		tr.Counter("live", map[string]float64{"b": 2, "a": 1})
		tr.End()
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("same clock produced different traces:\n%s\n---\n%s", a, b)
	}
}

func TestLogTracer(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogTracer(&buf)
	l.Begin("outer", A("k", "v"))
	l.Begin("inner")
	l.Instant("mark")
	l.End()
	l.Counter("dropped", map[string]float64{"x": 1})
	l.End()
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "> outer (k=v)" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[1] != "  > inner" {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    * mark") {
		t.Errorf("line 2 = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "  < inner") {
		t.Errorf("line 3 = %q", lines[3])
	}
	if strings.Contains(out, "dropped") {
		t.Errorf("counter sample should not be logged:\n%s", out)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a := NewChromeTraceClock(fakeClock())
	if Multi(nil, a) != Tracer(a) {
		t.Error("Multi(nil, a) should collapse to a")
	}
	b := NewChromeTraceClock(fakeClock())
	m := Multi(a, b)
	m.Begin("x")
	m.End()
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("fan-out missed a sink: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestNilHelpers(t *testing.T) {
	// Must not panic.
	Begin(nil, "x")
	End(nil)
	Instant(nil, "x")
	Sample(nil, "x", nil)
}
