package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("got %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d: got %g want %g", i, b[i], want[i])
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Errorf("Sum = %g, want 556.5", got)
	}
	// 0.5 and 1 land in bucket ≤1 (SearchFloat64s: first bound >= v),
	// 5 in ≤10, 50 in ≤100, 500 overflows.
	want := []int64{2, 1, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	// Overflow clamps to the last bound.
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %g, want 100 (overflow clamp)", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %g, want 0", q)
	}
}

// TestHistogramQuantileAccuracy checks the interpolation estimate
// against an exact sorted reference on fixed seeds: the estimate must
// land within one bucket of the true quantile (the documented error
// bound for exponential buckets).
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := ExpBuckets(1e-6, 2, 30)
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(bounds)
		samples := make([]float64, 20000)
		for i := range samples {
			// Log-uniform latencies between ~2µs and ~2s.
			v := math.Exp(rng.Float64()*math.Log(1e6)) * 2e-6
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			exact := samples[int(q*float64(len(samples)-1))]
			est := h.Quantile(q)
			// The estimate may be off by at most the width of the
			// bucket holding the exact value: with ×2 growth that is a
			// factor of 2 either way.
			if est < exact/2 || est > exact*2 {
				t.Errorf("seed %d q%.2f: estimate %g vs exact %g (off by more than one bucket)",
					seed, q, est, exact)
			}
		}
	}
}

// TestHistogramConcurrencyHammer drives many writers concurrently
// (run under -race in CI) and checks the final totals are exact.
func TestHistogramConcurrencyHammer(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(float64(rng.Intn(2000)))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("Count = %d, want %d", got, goroutines*perG)
	}
	var bucketTotal int64
	for _, c := range h.BucketCounts() {
		bucketTotal += c
	}
	if bucketTotal != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
	if h.Sum() <= 0 {
		t.Errorf("Sum = %g, want > 0", h.Sum())
	}
}

func TestHistogramRegistryIntegration(t *testing.T) {
	reg := New()
	h := reg.Histogram("test.lat", nil)
	if reg.Histogram("test.lat", SizeBuckets()) != h {
		t.Fatal("second registration returned a different histogram")
	}
	h.ObserveDuration(10 * time.Millisecond)
	snap := reg.Snapshot()
	if snap["test.lat.count"] != 1 {
		t.Errorf("snapshot count = %g, want 1", snap["test.lat.count"])
	}
	if snap["test.lat.sum"] < 0.009 || snap["test.lat.sum"] > 0.011 {
		t.Errorf("snapshot sum = %g, want ~0.01", snap["test.lat.sum"])
	}
	for _, k := range []string{"test.lat.p50", "test.lat.p95", "test.lat.p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s", k)
		}
	}
}
