package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Histogram is a fixed-bucket, lock-free latency/size distribution.
// Bucket bounds are chosen at construction (exponential in practice);
// Observe is two atomic adds plus a binary search over a couple dozen
// bounds, so recording stays cheap enough for per-request and per-op
// hot paths. Quantiles are estimated from the bucket counts by linear
// interpolation inside the winning bucket, so their error is bounded
// by one bucket's width — the exponential schemes below keep that
// within a factor of the bucket growth rate, which is what latency
// monitoring needs (the paper's performance story lives in
// distributions and hit ratios, not totals).
//
// All methods are safe for concurrent use. Count and Sum are updated
// by separate atomics, so a reader racing a writer can observe one
// without the other; once writers quiesce the totals are exact (the
// concurrency hammer test pins this down).
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []atomic.Int64
	over   atomic.Int64 // observations above the last bound
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-add
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start: start, start*factor, start*factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default bound scheme for durations in seconds:
// 1µs up to ~8.4s in ×2 steps (24 buckets + overflow).
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// SizeBuckets is the default bound scheme for counts (BDD nodes,
// tuples, bytes): 1 up to ~10⁹ in ×4 steps (16 buckets + overflow).
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 16) }

// NewHistogram builds a histogram over the given upper bounds, which
// must be strictly increasing. Nil bounds pick LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return floatFrom(h.sum.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of per-bucket counts; the extra last
// element is the overflow bucket (observations above the final bound).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.counts)] = h.over.Load()
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank. Returns 0
// with no observations; samples above the last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow clamps
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// addTo flattens the histogram's derived statistics under its name —
// the keys the flat metrics JSON and BENCH_*.json files carry.
func (h *Histogram) addTo(name string, out map[string]float64) {
	out[name+".count"] = float64(h.Count())
	out[name+".sum"] = h.Sum()
	out[name+".p50"] = h.Quantile(0.50)
	out[name+".p95"] = h.Quantile(0.95)
	out[name+".p99"] = h.Quantile(0.99)
}
