package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Flags bundles the observability flags every command shares:
// -trace, -metrics, -v, -progress, -cpuprofile, -memprofile. Register
// them on a FlagSet, then Start a Session after flag parsing and defer
// Close.
type Flags struct {
	TracePath   string
	MetricsPath string
	Verbose     bool
	Progress    time.Duration
	CPUProfile  string
	MemProfile  string
}

// Register installs the standard flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	fs.StringVar(&f.MetricsPath, "metrics", "", "write a flat metrics JSON file")
	fs.BoolVar(&f.Verbose, "v", false, "log phase progress to stderr")
	fs.DurationVar(&f.Progress, "progress", 0, "print a one-line heartbeat (phase, stratum/iteration, live nodes) to stderr at this interval (e.g. 2s; 0 = off)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
}

// Session is a started observability session: a Tracer (nil when both
// -trace and -v are off, so call sites stay free), a Metrics registry,
// and any running profiles. Close flushes everything.
type Session struct {
	// Tracer fans out to the Chrome trace buffer and/or the -v logger.
	// Nil when neither is requested.
	Tracer Tracer
	// Metrics is the session registry; Close writes it to -metrics.
	Metrics *Metrics

	name      string
	flags     Flags
	chrome    *ChromeTrace
	cpuFile   *os.File
	heartbeat *Sampler
}

// Start opens a session named name (the name lands in the metrics
// JSON). It begins CPU profiling if requested.
func (f *Flags) Start(name string) (*Session, error) {
	s := &Session{name: name, flags: *f, Metrics: New()}
	var tracers []Tracer
	if f.TracePath != "" {
		s.chrome = NewChromeTrace()
		tracers = append(tracers, s.chrome)
	}
	if f.Verbose {
		tracers = append(tracers, NewLogTracer(os.Stderr))
	}
	if f.Progress > 0 {
		p := NewProgress()
		tracers = append(tracers, p)
		s.heartbeat = StartHeartbeat(p, os.Stderr, f.Progress)
	}
	s.Tracer = Multi(tracers...)
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		s.cpuFile = cf
	}
	return s, nil
}

// Close stops profiles and writes the trace, metrics, and heap-profile
// files. It is safe to call once; errors report the first failure.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.heartbeat != nil {
		s.heartbeat.Stop()
		s.heartbeat = nil
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.flags.MemProfile != "" {
		mf, err := os.Create(s.flags.MemProfile)
		if err == nil {
			runtime.GC()
			keep(pprof.WriteHeapProfile(mf))
			keep(mf.Close())
		} else {
			keep(err)
		}
	}
	if s.chrome != nil && s.flags.TracePath != "" {
		tf, err := os.Create(s.flags.TracePath)
		if err == nil {
			_, werr := s.chrome.WriteTo(tf)
			keep(werr)
			keep(tf.Close())
		} else {
			keep(err)
		}
	}
	if s.flags.MetricsPath != "" {
		mf, err := os.Create(s.flags.MetricsPath)
		if err == nil {
			keep(s.Metrics.WriteJSON(mf, s.name))
			keep(mf.Close())
		} else {
			keep(err)
		}
	}
	return first
}
