package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sampler periodically evaluates a source function and keeps the
// results in a bounded ring buffer — the substrate time-series view
// behind the daemon's /debug/timeseries endpoint and the batch
// commands' -progress heartbeat. BDD behavior (live nodes, op-cache
// hit ratios, GC pressure) is invisible in end-of-run totals; a
// bounded trail of periodic snapshots is what order autotuning and
// op-cache sizing need to see.
//
// The sampler owns one goroutine between Start and Stop. The source
// runs on that goroutine; it must be safe to call concurrently with
// whatever it observes (registry snapshots and runtime stats are).
type Sampler struct {
	interval time.Duration
	capacity int
	source   func() map[string]float64
	onSample func(SamplePoint)

	mu   sync.Mutex
	ring []SamplePoint
	next int
	full bool

	stop chan struct{}
	done chan struct{}
}

// SamplePoint is one timestamped observation of every sampled series.
type SamplePoint struct {
	Time   time.Time          `json:"t"`
	Values map[string]float64 `json:"values"`
}

// NewSampler builds a sampler taking source() every interval, keeping
// the most recent capacity samples (0 = 600 — ten minutes at the
// default one-second interval).
func NewSampler(interval time.Duration, capacity int, source func() map[string]float64) *Sampler {
	if capacity <= 0 {
		capacity = 600
	}
	return &Sampler{
		interval: interval,
		capacity: capacity,
		source:   source,
	}
}

// OnSample registers a hook run after each sample is recorded (the
// -progress heartbeat printer). Set it before Start.
func (s *Sampler) OnSample(f func(SamplePoint)) { s.onSample = f }

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the sampling goroutine (taking an immediate first
// sample) and returns. Calling Start twice panics.
func (s *Sampler) Start() {
	if s.stop != nil {
		panic("obs: Sampler started twice")
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		s.SampleNow()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.SampleNow()
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to
// call once after Start; a never-started sampler is a no-op.
func (s *Sampler) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// SampleNow takes one sample immediately (also used by tests and by
// SIGQUIT dumps that want a fresh final point).
func (s *Sampler) SampleNow() SamplePoint {
	sm := SamplePoint{Time: time.Now(), Values: s.source()}
	s.mu.Lock()
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, sm)
	} else {
		s.ring[s.next] = sm
		s.next = (s.next + 1) % s.capacity
		s.full = true
	}
	s.mu.Unlock()
	if s.onSample != nil {
		s.onSample(sm)
	}
	return sm
}

// Snapshot returns the buffered samples oldest-first.
func (s *Sampler) Snapshot() []SamplePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]SamplePoint(nil), s.ring...)
	}
	out := make([]SamplePoint, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// WriteJSON writes the buffered time series as one JSON document:
//
//	{"interval_sec": 1, "samples": [{"t": ..., "values": {...}}, ...]}
//
// Values maps are emitted with sorted keys (encoding/json's map
// behavior), so dumps diff cleanly.
func (s *Sampler) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	doc := struct {
		IntervalSec float64       `json:"interval_sec"`
		Samples     []SamplePoint `json:"samples"`
	}{IntervalSec: s.interval.Seconds(), Samples: s.Snapshot()}
	if doc.Samples == nil {
		doc.Samples = []SamplePoint{}
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// RuntimeStats samples the Go runtime: goroutine count, heap in use,
// cumulative GC count and pause time. It reads runtime.MemStats
// without a stop-the-world (ReadMemStats is a brief STW in practice —
// at one sample per second the cost is noise).
func RuntimeStats() map[string]float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]float64{
		"go.goroutines":        float64(runtime.NumGoroutine()),
		"go.heap_inuse_bytes":  float64(ms.HeapInuse),
		"go.heap_alloc_bytes":  float64(ms.HeapAlloc),
		"go.gc_count":          float64(ms.NumGC),
		"go.gc_pause_total_ns": float64(ms.PauseTotalNs),
	}
}

// RegistrySource builds a sampler source that snapshots reg, keeps
// keys matching any of the given prefixes (none = all), and merges in
// RuntimeStats.
func RegistrySource(reg *Metrics, prefixes ...string) func() map[string]float64 {
	return func() map[string]float64 {
		out := RuntimeStats()
		for k, v := range reg.Snapshot() {
			if len(prefixes) > 0 && !hasAnyPrefix(k, prefixes) {
				continue
			}
			out[k] = v
		}
		return out
	}
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// SummarizeSamples reduces a sample trail to per-key min/mean/max/last
// — the obsreport timeseries view. Keys are returned sorted.
func SummarizeSamples(samples []SamplePoint) []SeriesSummary {
	agg := make(map[string]*SeriesSummary)
	for _, sm := range samples {
		for k, v := range sm.Values {
			a := agg[k]
			if a == nil {
				a = &SeriesSummary{Key: k, Min: v, Max: v}
				agg[k] = a
			}
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
			a.sum += v
			a.Count++
			a.Last = v
		}
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SeriesSummary, len(keys))
	for i, k := range keys {
		a := agg[k]
		a.Mean = a.sum / float64(a.Count)
		out[i] = *a
	}
	return out
}

// SeriesSummary is one key's aggregate over a sample trail.
type SeriesSummary struct {
	Key                  string
	Min, Mean, Max, Last float64
	Count                int
	sum                  float64
}
