package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a Tracer that distills span traffic into a handful of
// live atomic gauges — which phase is running, the current stratum and
// iteration, rule applications so far, BDD live nodes at the last GC —
// without buffering anything. A Sampler reads it periodically and
// prints the batch commands' -progress heartbeat, so a multi-minute
// context-sensitive solve shows a per-stratum/iteration pulse on
// stderr instead of silence.
//
// Begin/End stay cheap on the hot path: rule and op spans cost one
// prefix check and at most one atomic add.
type Progress struct {
	start     time.Time
	ruleApps  atomic.Int64
	stratum   atomic.Int64 // +1, 0 = none seen yet
	iteration atomic.Int64
	liveNodes atomic.Int64

	mu    sync.Mutex
	phase string // innermost coarse phase span
}

// NewProgress returns a Progress tracer with the clock started.
func NewProgress() *Progress { return &Progress{start: time.Now()} }

// Begin implements Tracer.
func (p *Progress) Begin(name string, args ...Arg) {
	switch {
	case strings.HasPrefix(name, "rule "):
		p.ruleApps.Add(1)
	case strings.HasPrefix(name, "op."):
		// Too hot and too fine for a heartbeat.
	case strings.HasPrefix(name, "stratum "):
		p.stratum.Store(parseTrailingInt(name) + 1)
		p.iteration.Store(0)
	case strings.HasPrefix(name, "iteration "):
		p.iteration.Store(parseTrailingInt(name))
	case name == "bdd.gc":
		// GC spans carry live_before/live_after in args; the Counter
		// sample below is the one we read.
	default:
		p.mu.Lock()
		p.phase = name
		p.mu.Unlock()
	}
}

// End implements Tracer.
func (p *Progress) End(args ...Arg) {}

// Instant implements Tracer.
func (p *Progress) Instant(name string, args ...Arg) {}

// Counter implements Tracer; the BDD manager's live-node samples keep
// the heartbeat's memory column current.
func (p *Progress) Counter(name string, values map[string]float64) {
	if name == "bdd.live_nodes" {
		if v, ok := values["live"]; ok {
			p.liveNodes.Store(int64(v))
		}
	}
}

func parseTrailingInt(name string) int64 {
	i := strings.LastIndexByte(name, ' ')
	if i < 0 {
		return 0
	}
	var n int64
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return n
		}
		n = n*10 + int64(r-'0')
	}
	return n
}

// Values reports the current progress state as sampler series
// (progress.* keys).
func (p *Progress) Values() map[string]float64 {
	return map[string]float64{
		"progress.rule_apps":      float64(p.ruleApps.Load()),
		"progress.stratum":        float64(p.stratum.Load() - 1),
		"progress.iteration":      float64(p.iteration.Load()),
		"progress.bdd_live_nodes": float64(p.liveNodes.Load()),
	}
}

// Heartbeat formats one -progress line: phase, stratum/iteration
// position, work counters, and memory.
func (p *Progress) Heartbeat() string {
	p.mu.Lock()
	phase := p.phase
	p.mu.Unlock()
	if phase == "" {
		phase = "startup"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "progress: %s", phase)
	if st := p.stratum.Load(); st > 0 {
		fmt.Fprintf(&sb, " stratum=%d", st-1)
		fmt.Fprintf(&sb, " iter=%d", p.iteration.Load())
	}
	fmt.Fprintf(&sb, " rule-apps=%d", p.ruleApps.Load())
	if live := p.liveNodes.Load(); live > 0 {
		fmt.Fprintf(&sb, " live-nodes=%d", live)
	}
	rt := RuntimeStats()
	fmt.Fprintf(&sb, " heap=%.0fMB elapsed=%s",
		rt["go.heap_inuse_bytes"]/(1<<20),
		time.Since(p.start).Round(time.Second))
	return sb.String()
}

// StartHeartbeat wires a Progress tracer to a Sampler printing one
// heartbeat line per interval to w. The caller owns the returned
// sampler's lifetime (Stop it when the run finishes).
func StartHeartbeat(p *Progress, w io.Writer, interval time.Duration) *Sampler {
	s := NewSampler(interval, 0, func() map[string]float64 {
		out := RuntimeStats()
		for k, v := range p.Values() {
			out[k] = v
		}
		return out
	})
	s.OnSample(func(SamplePoint) { fmt.Fprintln(w, p.Heartbeat()) })
	s.Start()
	return s
}
