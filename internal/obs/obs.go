// Package obs is the repository's observability layer: structured
// tracing (timestamped span/counter events) and a lock-cheap metrics
// registry (counters, gauges, timers), with two sinks — Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing) and a
// flat metrics-JSON exporter used by the BENCH_*.json trajectory
// files. It depends only on the standard library.
//
// The design rule for hot paths: a disabled tracer is a nil Tracer,
// and every emission site guards with a nil check (directly or via the
// package-level Begin/End/Instant helpers), so tracing off costs one
// predictable branch. Metrics handles (Counter, Gauge, Timer) are
// looked up once and updated with atomics, so counting stays cheap
// even when enabled.
package obs

// Arg is one key/value annotation attached to a trace event. Values
// should be JSON-encodable (numbers and strings in practice).
type Arg struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Arg.
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// Tracer consumes structured, timestamped trace events. Spans nest:
// Begin opens a span, End closes the innermost open one. Implementations
// must be safe for concurrent use. A nil Tracer means tracing is off;
// emission sites must guard with a nil check (the package-level helpers
// below do).
type Tracer interface {
	// Begin opens a nested span.
	Begin(name string, args ...Arg)
	// End closes the innermost open span, attaching args to it.
	End(args ...Arg)
	// Instant records a zero-duration point event.
	Instant(name string, args ...Arg)
	// Counter records a sample of one or more named series under a
	// common track name (rendered as a stacked counter in Perfetto).
	Counter(name string, values map[string]float64)
}

// Begin opens a span on t if tracing is enabled.
func Begin(t Tracer, name string, args ...Arg) {
	if t != nil {
		t.Begin(name, args...)
	}
}

// End closes the innermost span on t if tracing is enabled.
func End(t Tracer, args ...Arg) {
	if t != nil {
		t.End(args...)
	}
}

// Instant records a point event on t if tracing is enabled.
func Instant(t Tracer, name string, args ...Arg) {
	if t != nil {
		t.Instant(name, args...)
	}
}

// Sample records a counter sample on t if tracing is enabled.
func Sample(t Tracer, name string, values map[string]float64) {
	if t != nil {
		t.Counter(name, values)
	}
}

// multi fans events out to several tracers.
type multi []Tracer

// Multi combines tracers into one; nils are dropped. Returns nil when
// nothing remains, so the result still short-circuits at call sites.
func Multi(ts ...Tracer) Tracer {
	var nz multi
	for _, t := range ts {
		if t != nil {
			nz = append(nz, t)
		}
	}
	switch len(nz) {
	case 0:
		return nil
	case 1:
		return nz[0]
	}
	return nz
}

func (m multi) Begin(name string, args ...Arg) {
	for _, t := range m {
		t.Begin(name, args...)
	}
}

func (m multi) End(args ...Arg) {
	for _, t := range m {
		t.End(args...)
	}
}

func (m multi) Instant(name string, args ...Arg) {
	for _, t := range m {
		t.Instant(name, args...)
	}
}

func (m multi) Counter(name string, values map[string]float64) {
	for _, t := range m {
		t.Counter(name, values)
	}
}
