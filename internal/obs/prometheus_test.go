package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.cache.hits":  "serve_cache_hits",
		"already_fine":      "already_fine",
		"a:b":               "a:b",
		"9lives":            "_9lives",
		"datalog.rule.007":  "datalog_rule_007",
		"weird-chars space": "weird_chars_space",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden locks the full exposition format: family
// ordering, counter/gauge/summary encodings, cumulative histogram
// buckets, and trailing info gauges.
func TestWritePrometheusGolden(t *testing.T) {
	m := New()
	m.Counter("serve.requests").Add(3)
	m.Gauge("serve.inflight").Set(2)
	m.Timer("serve.query").Observe(1500 * time.Millisecond)
	m.Timer("serve.query").Observe(500 * time.Millisecond)
	h := m.Histogram("serve.latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // ≤0.001
	h.Observe(0.05)   // ≤0.1
	h.Observe(0.05)   // ≤0.1
	h.Observe(5)      // +Inf

	var sb strings.Builder
	err := m.WritePrometheus(&sb, PromInfo{
		Name:   "bddbddb.build.info",
		Labels: [][2]string{{"version", "v1.2.3"}, {"go_version", "go1.x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# TYPE serve_inflight gauge
serve_inflight 2
# TYPE serve_query summary
serve_query_sum 2
serve_query_count 2
# TYPE serve_requests counter
serve_requests 3
# TYPE serve_latency histogram
serve_latency_bucket{le="0.001"} 1
serve_latency_bucket{le="0.01"} 1
serve_latency_bucket{le="0.1"} 3
serve_latency_bucket{le="+Inf"} 4
serve_latency_sum 5.1005
serve_latency_count 4
# TYPE bddbddb_build_info gauge
bddbddb_build_info{version="v1.2.3",go_version="go1.x"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: two writes of an idle registry are
// byte-identical (scrape stability).
func TestWritePrometheusDeterministic(t *testing.T) {
	m := New()
	for _, name := range []string{"z.last", "a.first", "m.mid"} {
		m.Counter(name).Add(1)
	}
	m.Histogram("h.two", []float64{1, 2}).Observe(1.5)
	m.Histogram("h.one", []float64{1, 2}).Observe(0.5)
	var a, b strings.Builder
	if err := m.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("successive writes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Sorted family order within each section.
	out := a.String()
	if strings.Index(out, "a_first") > strings.Index(out, "m_mid") ||
		strings.Index(out, "m_mid") > strings.Index(out, "z_last") {
		t.Errorf("counter families not sorted:\n%s", out)
	}
	if strings.Index(out, "h_one_bucket") > strings.Index(out, "h_two_bucket") {
		t.Errorf("histogram families not sorted:\n%s", out)
	}
}

func TestBuildInfoPromInfo(t *testing.T) {
	b := BuildInfo{Version: "(devel)", GoVersion: "go1.22", Revision: "abc123", Modified: true}
	info := b.PromInfo("bddbddb", [2]string{"fingerprint", "deadbeef"})
	if info.Name != "bddbddb_build_info" {
		t.Errorf("Name = %q", info.Name)
	}
	var sb strings.Builder
	m := New()
	if err := m.WritePrometheus(&sb, info); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`version="(devel)"`, `go_version="go1.22"`, `revision="abc123+dirty"`, `fingerprint="deadbeef"`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
}
