package obs

import (
	"math"
	"strings"
	"testing"
)

func TestTopRules(t *testing.T) {
	vals := map[string]float64{
		"datalog.rule.000.sec":   0.5,
		"datalog.rule.000.count": 3,
		"datalog.rule.001.sec":   2.0,
		"datalog.rule.001.count": 10,
		"datalog.rule.002.sec":   0.1,
		"datalog.iterations":     42,
	}
	top := TopRules(vals, 2)
	if len(top) != 2 {
		t.Fatalf("got %d rules", len(top))
	}
	if top[0].Key != "datalog.rule.001" || top[0].Seconds != 2.0 || top[0].Applications != 10 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != "datalog.rule.000" {
		t.Errorf("top[1] = %+v", top[1])
	}
	if all := TopRules(vals, 0); len(all) != 3 {
		t.Errorf("k=0 should return all rules, got %d", len(all))
	}
}

func TestTopOps(t *testing.T) {
	vals := map[string]float64{
		"datalog.op.join_project":       100,
		"datalog.op.union":              250,
		"datalog.op.result_nodes.p99":   4096, // histogram sub-key, skipped
		"datalog.op.result_nodes.count": 350,
		"datalog.rule.000.sec":          1,
	}
	top := TopOps(vals, 10)
	if len(top) != 2 {
		t.Fatalf("got %+v", top)
	}
	if top[0].Key != "datalog.op.union" || top[0].Count != 250 {
		t.Errorf("top[0] = %+v", top[0])
	}
}

func TestReadTracePhases(t *testing.T) {
	trace := `{"displayTimeUnit":"ms","traceEvents":[
		{"name":"solve","ph":"B","ts":0},
		{"name":"stratum 0","ph":"B","ts":10},
		{"name":"stratum 0","ph":"E","ts":40},
		{"name":"stratum 1","ph":"B","ts":50},
		{"name":"stratum 1","ph":"E","ts":90},
		{"name":"solve","ph":"E","ts":100}
	]}`
	phases, err := ReadTracePhases(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PhaseCost{}
	for _, p := range phases {
		byName[p.Name] = p
	}
	solve := byName["solve"]
	if solve.TotalUS != 100 || solve.SelfUS != 30 || solve.Count != 1 {
		t.Errorf("solve = %+v (want total 100, self 30)", solve)
	}
	if byName["stratum 0"].TotalUS != 30 || byName["stratum 1"].TotalUS != 40 {
		t.Errorf("strata = %+v", byName)
	}
	// Sorted by total descending.
	if phases[0].Name != "solve" {
		t.Errorf("order: %+v", phases)
	}
}

func TestDiffMetrics(t *testing.T) {
	oldVals := map[string]float64{
		"solve.time_sec":        10,
		"serve.qps":             100,
		"bdd.peak_nodes":        1000,
		"serve.cache.hit_ratio": 0.9,
		"gone.metric":           1,
	}
	newVals := map[string]float64{
		"solve.time_sec":        13, // +30% cost → regression
		"serve.qps":             80, // -20% goodness → regression
		"bdd.peak_nodes":        1010,
		"serve.cache.hit_ratio": 0.95, // improvement
		"fresh.metric":          5,
	}
	entries := DiffMetrics(oldVals, newVals, 0.10)
	byKey := map[string]DiffEntry{}
	for _, e := range entries {
		byKey[e.Key] = e
	}
	if e := byKey["solve.time_sec"]; !e.Regression || math.Abs(e.Delta-0.3) > 1e-9 {
		t.Errorf("time_sec: %+v", e)
	}
	if e := byKey["serve.qps"]; !e.Regression || math.Abs(e.Delta+0.2) > 1e-9 {
		t.Errorf("qps: %+v", e)
	}
	// +1% node growth is under threshold — absent.
	if _, ok := byKey["bdd.peak_nodes"]; ok {
		t.Errorf("peak_nodes under threshold should be filtered")
	}
	// hit_ratio went up: reported (>10%? 0.9→0.95 is +5.6% — under threshold, absent).
	if _, ok := byKey["serve.cache.hit_ratio"]; ok {
		t.Errorf("hit_ratio under threshold should be filtered")
	}
	if e := byKey["gone.metric"]; e.Missing != "new" {
		t.Errorf("gone.metric: %+v", e)
	}
	if e := byKey["fresh.metric"]; e.Missing != "old" {
		t.Errorf("fresh.metric: %+v", e)
	}
	// Missing entries sort last.
	if entries[len(entries)-1].Missing == "" || entries[len(entries)-2].Missing == "" {
		t.Errorf("missing entries not last: %+v", entries)
	}
	// Largest |delta| first among present keys.
	if entries[0].Key != "solve.time_sec" {
		t.Errorf("entries[0] = %+v", entries[0])
	}
}

func TestDiffMetricsZeroOld(t *testing.T) {
	entries := DiffMetrics(map[string]float64{"x.sec": 0}, map[string]float64{"x.sec": 5}, 0.1)
	if len(entries) != 1 || !math.IsInf(entries[0].Delta, 1) || !entries[0].Regression {
		t.Errorf("zero-old: %+v", entries)
	}
}

func TestParseThreshold(t *testing.T) {
	cases := map[string]float64{
		"10%":  0.10,
		"0.1":  0.10,
		"10":   0.10,
		"2.5%": 0.025,
		"0":    0,
	}
	for in, want := range cases {
		got, err := ParseThreshold(in)
		if err != nil {
			t.Errorf("ParseThreshold(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("ParseThreshold(%q) = %g, want %g", in, got, want)
		}
	}
	if _, err := ParseThreshold("nope"); err == nil {
		t.Errorf("bad threshold accepted")
	}
	if _, err := ParseThreshold("-5%"); err == nil {
		t.Errorf("negative threshold accepted")
	}
}

// TestWriteMetricsJSONGolden guards the flat metrics format: sorted
// keys, one per line, non-finite clamped to zero.
func TestWriteMetricsJSONGolden(t *testing.T) {
	vals := map[string]float64{
		"z.last":   3,
		"a.first":  1.5,
		"m.nan":    math.NaN(),
		"m.inf":    math.Inf(1),
		"m.middle": 2,
	}
	var sb strings.Builder
	if err := WriteMetricsJSON(&sb, "golden", vals); err != nil {
		t.Fatal(err)
	}
	want := `{
  "name": "golden",
  "metrics": {
    "a.first": 1.5,
    "m.inf": 0,
    "m.middle": 2,
    "m.nan": 0,
    "z.last": 3
  }
}
`
	if got := sb.String(); got != want {
		t.Errorf("format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Determinism across repeated writes (map iteration must not leak).
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := WriteMetricsJSON(&again, "golden", vals); err != nil {
			t.Fatal(err)
		}
		if again.String() != want {
			t.Fatalf("write %d differs", i)
		}
	}
}
