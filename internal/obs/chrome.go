package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// ChromeTrace is a Tracer that buffers events and writes them as a
// Chrome trace-event JSON file (the "JSON Array Format" with a
// traceEvents wrapper), loadable in Perfetto and chrome://tracing.
// Timestamps are microseconds from the tracer's creation, taken from
// the monotonic clock, so they are non-decreasing by construction.
type ChromeTrace struct {
	mu     sync.Mutex
	events []chromeEvent
	open   []string // names of open spans, innermost last
	clock  func() time.Duration
	lastUS int64
}

type chromeEvent struct {
	name  string
	phase byte // 'B', 'E', 'i', 'C'
	us    int64
	args  []Arg
}

// NewChromeTrace returns a ChromeTrace on the real monotonic clock.
func NewChromeTrace() *ChromeTrace {
	start := time.Now()
	return &ChromeTrace{clock: func() time.Duration { return time.Since(start) }}
}

// NewChromeTraceClock returns a ChromeTrace reading time from clock
// (elapsed time since trace start). Tests inject a deterministic clock
// to make traces byte-for-byte reproducible.
func NewChromeTraceClock(clock func() time.Duration) *ChromeTrace {
	return &ChromeTrace{clock: clock}
}

// now returns a non-decreasing microsecond timestamp. Must be called
// with mu held.
func (t *ChromeTrace) now() int64 {
	us := t.clock().Microseconds()
	if us < t.lastUS {
		us = t.lastUS
	}
	t.lastUS = us
	return us
}

// Begin implements Tracer.
func (t *ChromeTrace) Begin(name string, args ...Arg) {
	t.mu.Lock()
	t.open = append(t.open, name)
	t.events = append(t.events, chromeEvent{name: name, phase: 'B', us: t.now(), args: args})
	t.mu.Unlock()
}

// End implements Tracer. An End with no matching Begin is dropped.
func (t *ChromeTrace) End(args ...Arg) {
	t.mu.Lock()
	if n := len(t.open); n > 0 {
		name := t.open[n-1]
		t.open = t.open[:n-1]
		t.events = append(t.events, chromeEvent{name: name, phase: 'E', us: t.now(), args: args})
	}
	t.mu.Unlock()
}

// Instant implements Tracer.
func (t *ChromeTrace) Instant(name string, args ...Arg) {
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{name: name, phase: 'i', us: t.now(), args: args})
	t.mu.Unlock()
}

// Counter implements Tracer.
func (t *ChromeTrace) Counter(name string, values map[string]float64) {
	args := make([]Arg, 0, len(values))
	for k, v := range values {
		args = append(args, Arg{Key: k, Value: v})
	}
	sort.Slice(args, func(i, j int) bool { return args[i].Key < args[j].Key })
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{name: name, phase: 'C', us: t.now(), args: args})
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *ChromeTrace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo writes the buffered events as Chrome trace-event JSON. Spans
// still open are closed at the current timestamp so the file is always
// well formed. The tracer remains usable afterwards.
func (t *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	events := make([]chromeEvent, len(t.events), len(t.events)+len(t.open))
	copy(events, t.events)
	for i := len(t.open) - 1; i >= 0; i-- {
		events = append(events, chromeEvent{name: t.open[i], phase: 'E', us: t.now()})
	}
	t.mu.Unlock()

	cw := &countWriter{w: bufio.NewWriter(w)}
	fmt.Fprintf(cw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i, e := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		line, err := e.marshal()
		if err != nil {
			return cw.n, err
		}
		fmt.Fprintf(cw, "%s%s\n", line, sep)
	}
	fmt.Fprintf(cw, "]}\n")
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// marshal renders one event as a single JSON object. Keys are emitted
// in a fixed order so traces diff cleanly.
func (e chromeEvent) marshal() (string, error) {
	nameJSON, err := json.Marshal(e.name)
	if err != nil {
		return "", err
	}
	s := fmt.Sprintf("{\"name\":%s,\"ph\":\"%c\",\"ts\":%d,\"pid\":1,\"tid\":1", nameJSON, e.phase, e.us)
	if e.phase == 'i' {
		s += ",\"s\":\"t\"" // thread-scoped instant
	}
	if len(e.args) > 0 {
		s += ",\"args\":{"
		for i, a := range e.args {
			kj, err := json.Marshal(a.Key)
			if err != nil {
				return "", err
			}
			vj, err := json.Marshal(a.Value)
			if err != nil {
				return "", err
			}
			if i > 0 {
				s += ","
			}
			s += string(kj) + ":" + string(vj)
		}
		s += "}"
	}
	return s + "}", nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
