package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named counters, gauges, and timers.
// Registration (the first lookup of a name) takes a mutex; updates on
// the returned handles are atomic, so concurrent counting does not
// contend. Callers keep handles for hot paths and treat the registry
// as the single source of truth for anything they count.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 last-value-wins measurement.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adjusts the gauge by d (live counts: in-flight
// requests, unreleased query states).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax stores v if it exceeds the current value (high-water marks).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates durations: a count of observations and their total.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe adds one duration sample.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the summed duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// Counter returns (registering on first use) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns (registering on first use) the named timer.
func (m *Metrics) Timer(name string) *Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.timers[name]
	if t == nil {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// Histogram returns (registering on first use) the named histogram.
// bounds applies only at registration (nil = LatencyBuckets); later
// lookups return the existing histogram whatever bounds they pass.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		m.hists[name] = h
	}
	return h
}

// EachHistogram calls f for every registered histogram in name order —
// the iteration behind the Prometheus exposition, which needs raw
// bucket counts rather than the flattened Snapshot view.
func (m *Metrics) EachHistogram(f func(name string, h *Histogram)) {
	m.mu.Lock()
	names := make([]string, 0, len(m.hists))
	for name := range m.hists {
		names = append(names, name)
	}
	hists := make([]*Histogram, len(names))
	sort.Strings(names)
	for i, name := range names {
		hists[i] = m.hists[name]
	}
	m.mu.Unlock()
	for i, name := range names {
		f(name, hists[i])
	}
}

// Set is shorthand for Gauge(name).Set(v).
func (m *Metrics) Set(name string, v float64) { m.Gauge(name).Set(v) }

// Snapshot flattens the registry into name → value. Counters and
// gauges export under their own names; a timer named t exports
// "t.count" and "t.sec" (total seconds); a histogram named h exports
// "h.count", "h.sum", and the estimated "h.p50"/"h.p95"/"h.p99".
func (m *Metrics) Snapshot() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.counters)+len(m.gauges)+2*len(m.timers)+5*len(m.hists))
	for name, c := range m.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	for name, t := range m.timers {
		out[name+".count"] = float64(t.Count())
		out[name+".sec"] = t.Total().Seconds()
	}
	for name, h := range m.hists {
		h.addTo(name, out)
	}
	return out
}
