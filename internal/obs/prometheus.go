package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the registry — the
// content-negotiated alternative to the flat metrics JSON on a
// daemon's /metrics endpoint. Counters and gauges export under their
// sanitized names, timers as summaries (sum + count), histograms as
// full histogram families with cumulative le buckets. Families are
// emitted in sorted name order so successive scrapes of an idle
// process are byte-identical.

// PromInfo is an info-style metric: a gauge fixed at 1 whose labels
// carry identity strings (build revision, snapshot fingerprint) that
// have no numeric encoding. Label order is preserved as given.
type PromInfo struct {
	Name   string
	Labels [][2]string
}

// PromName sanitizes a dotted metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:]: every other rune becomes '_', and
// a leading digit gets a '_' prefix.
func PromName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = fmt.Sprintf("%s=%q", PromName(kv[0]), kv[1])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the registry in the Prometheus text format,
// appending the given info metrics (each a constant 1 with labels).
func (m *Metrics) WritePrometheus(w io.Writer, infos ...PromInfo) error {
	bw := bufio.NewWriter(w)

	m.mu.Lock()
	type sample struct {
		name string
		typ  string // counter | gauge | summary
		val  float64
		sum  float64 // summaries only
	}
	var samples []sample
	for name, c := range m.counters {
		samples = append(samples, sample{name: name, typ: "counter", val: float64(c.Value())})
	}
	for name, g := range m.gauges {
		samples = append(samples, sample{name: name, typ: "gauge", val: g.Value()})
	}
	for name, t := range m.timers {
		samples = append(samples, sample{name: name, typ: "summary", val: float64(t.Count()), sum: t.Total().Seconds()})
	}
	histNames := make([]string, 0, len(m.hists))
	for name := range m.hists {
		histNames = append(histNames, name)
	}
	hists := make([]*Histogram, 0, len(histNames))
	sort.Strings(histNames)
	for _, name := range histNames {
		hists = append(hists, m.hists[name])
	}
	m.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	for _, s := range samples {
		pn := PromName(s.name)
		fmt.Fprintf(bw, "# TYPE %s %s\n", pn, s.typ)
		switch s.typ {
		case "summary":
			fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(s.sum))
			fmt.Fprintf(bw, "%s_count %s\n", pn, promFloat(s.val))
		default:
			fmt.Fprintf(bw, "%s %s\n", pn, promFloat(s.val))
		}
	}
	for i, name := range histNames {
		h := hists[i]
		pn := PromName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		counts := h.BucketCounts()
		bounds := h.Bounds()
		var cum int64
		for j, b := range bounds {
			cum += counts[j]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum)
		}
		cum += counts[len(bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", pn, cum)
	}
	for _, info := range infos {
		pn := PromName(info.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s%s 1\n", pn, promLabels(info.Labels))
	}
	return bw.Flush()
}
