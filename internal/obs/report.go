package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Offline report helpers behind cmd/obsreport: load the repo's three
// observability file formats (flat metrics JSON / BENCH_*.json, Chrome
// trace-event JSON, sampler time-series JSON) and reduce them to the
// views a perf investigation starts from — hottest rules and ops,
// per-phase breakdowns, and a thresholded two-file diff usable as a CI
// perf-regression gate.

// MetricsFile is a parsed flat metrics JSON document.
type MetricsFile struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// ReadMetricsFile loads a -metrics / BENCH_*.json file.
func ReadMetricsFile(path string) (MetricsFile, error) {
	var mf MetricsFile
	data, err := os.ReadFile(path)
	if err != nil {
		return mf, err
	}
	if err := json.Unmarshal(data, &mf); err != nil {
		return mf, fmt.Errorf("%s: %w", path, err)
	}
	if mf.Metrics == nil {
		return mf, fmt.Errorf("%s: no \"metrics\" object", path)
	}
	return mf, nil
}

// RuleCost is one rule's aggregate cost from a metrics file.
type RuleCost struct {
	Key          string // datalog.rule.NNN
	Seconds      float64
	Applications float64
	Tuples       float64
}

var ruleSecRe = regexp.MustCompile(`^(datalog\.rule\.\d+)\.sec$`)

// TopRules extracts per-rule timers (datalog.rule.NNN.sec/.count and
// the optional .tuples counters) and returns the k most expensive by
// cumulative seconds. k <= 0 returns all.
func TopRules(vals map[string]float64, k int) []RuleCost {
	var out []RuleCost
	for key, v := range vals {
		m := ruleSecRe.FindStringSubmatch(key)
		if m == nil {
			continue
		}
		base := m[1]
		out = append(out, RuleCost{
			Key:          base,
			Seconds:      v,
			Applications: vals[base+".count"],
			Tuples:       vals[base+".tuples"],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// OpCount is one plan-op kind's execution count.
type OpCount struct {
	Key   string
	Count float64
}

// TopOps extracts the datalog.op.* execution counters (skipping
// derived histogram/cache sub-keys) sorted by count descending.
func TopOps(vals map[string]float64, k int) []OpCount {
	var out []OpCount
	for key, v := range vals {
		if !strings.HasPrefix(key, "datalog.op.") {
			continue
		}
		if strings.Count(key, ".") != 2 { // sub-keys like .result_nodes.p99
			continue
		}
		out = append(out, OpCount{Key: key, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// PhaseCost aggregates a Chrome trace's spans by name.
type PhaseCost struct {
	Name string
	// TotalUS sums the span durations; SelfUS excludes time spent in
	// nested spans. Count is the number of spans with this name.
	TotalUS, SelfUS int64
	Count           int
}

// ReadTracePhases parses a Chrome trace-event JSON stream (the obs
// ChromeTrace format: B/E pairs on one thread) and aggregates
// durations per span name.
func ReadTracePhases(r io.Reader) ([]PhaseCost, error) {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	agg := make(map[string]*PhaseCost)
	get := func(name string) *PhaseCost {
		p := agg[name]
		if p == nil {
			p = &PhaseCost{Name: name}
			agg[name] = p
		}
		return p
	}
	type frame struct {
		name    string
		startUS int64
		childUS int64
	}
	var stack []frame
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			stack = append(stack, frame{name: e.Name, startUS: e.TS})
		case "E":
			if len(stack) == 0 {
				continue
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			d := e.TS - f.startUS
			p := get(f.name)
			p.TotalUS += d
			p.SelfUS += d - f.childUS
			p.Count++
			if len(stack) > 0 {
				stack[len(stack)-1].childUS += d
			}
		}
	}
	out := make([]PhaseCost, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// ReadTimeseries loads a sampler WriteJSON / /debug/timeseries dump.
func ReadTimeseries(r io.Reader) (intervalSec float64, samples []SamplePoint, err error) {
	var doc struct {
		IntervalSec float64       `json:"interval_sec"`
		Samples     []SamplePoint `json:"samples"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return 0, nil, err
	}
	return doc.IntervalSec, doc.Samples, nil
}

// DiffEntry is one key's change between two metrics files. Delta is
// the relative change (new-old)/|old|; it is ±Inf when the key
// appeared or the old value was zero.
type DiffEntry struct {
	Key      string
	Old, New float64
	// Delta is (New-Old)/|Old|.
	Delta float64
	// Missing marks keys present in only one file ("old" or "new").
	Missing string
	// Regression marks a change in the bad direction beyond the
	// threshold: cost-like keys (sec, us, nodes, bytes, …) going up,
	// goodness-like keys (qps, speedup, hit_ratio) going down.
	Regression bool
}

// Suffix classes deciding which direction of change is a regression.
var (
	goodSuffixes = []string{"qps", "speedup", "hit_ratio"}
	costSuffixes = []string{"sec", "_us", "_ms", "nodes", "bytes", "gcs", ".p50", ".p95", ".p99"}
)

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// DiffMetrics compares two flat metric maps. Entries are returned for
// every key whose relative change meets threshold (e.g. 0.10 = 10%)
// and for keys present on only one side, sorted by |Delta| descending
// (missing keys last).
func DiffMetrics(oldVals, newVals map[string]float64, threshold float64) []DiffEntry {
	var out []DiffEntry
	for key, ov := range oldVals {
		nv, ok := newVals[key]
		if !ok {
			out = append(out, DiffEntry{Key: key, Old: ov, Missing: "new"})
			continue
		}
		if ov == nv {
			continue
		}
		var delta float64
		switch {
		case ov != 0:
			delta = (nv - ov) / abs(ov)
		case nv > 0:
			delta = math.Inf(1)
		default:
			delta = math.Inf(-1)
		}
		if abs(delta) < threshold {
			continue
		}
		e := DiffEntry{Key: key, Old: ov, New: nv, Delta: delta}
		switch {
		case hasAnySuffix(key, goodSuffixes):
			e.Regression = delta < 0
		case hasAnySuffix(key, costSuffixes):
			e.Regression = delta > 0
		}
		out = append(out, e)
	}
	for key, nv := range newVals {
		if _, ok := oldVals[key]; !ok {
			out = append(out, DiffEntry{Key: key, New: nv, Missing: "old"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := out[i].Missing != "", out[j].Missing != ""
		if mi != mj {
			return mj
		}
		di, dj := abs(out[i].Delta), abs(out[j].Delta)
		if di != dj {
			return di > dj
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ParseThreshold parses "10%", "0.1", or "10" (percent when > 1 or
// suffixed with %) into a fraction.
func ParseThreshold(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, fmt.Errorf("bad threshold %q", s)
	}
	if pct || v > 1 {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("negative threshold %q", s)
	}
	return v, nil
}
