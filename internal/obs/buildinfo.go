package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: what /healthz and the
// metrics exposition report so an operator can join a live daemon (or
// a BENCH_*.json file) back to a commit.
type BuildInfo struct {
	// Path is the main module path, Version its module version
	// ("(devel)" for source builds).
	Path    string `json:"path"`
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision/Modified come from the VCS stamp when present: the
	// commit hash and whether the working tree was dirty.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// ReadBuildInfo collects the binary's identity from the runtime's
// embedded build information. Fields missing from the build (e.g. no
// VCS stamp under plain `go test`) are left zero.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// PromInfo renders the build identity as a Prometheus info metric
// (name_build_info 1 with identity labels), with any extra labels
// (snapshot fingerprint, algorithm) appended.
func (b BuildInfo) PromInfo(name string, extra ...[2]string) PromInfo {
	labels := [][2]string{
		{"version", b.Version},
		{"go_version", b.GoVersion},
	}
	if b.Revision != "" {
		rev := b.Revision
		if b.Modified {
			rev += "+dirty"
		}
		labels = append(labels, [2]string{"revision", rev})
	}
	labels = append(labels, extra...)
	return PromInfo{Name: name + "_build_info", Labels: labels}
}
