package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessLogger writes one JSON object per request (JSON lines), the
// daemon's machine-readable access log. Records carry the request ID,
// so a 422/429 response, its access-log line, and the per-request
// trace spans and tagged resilience errors all join on one key.
type AccessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// AccessRecord is one served request. Field order is fixed by the
// struct so lines diff and grep cleanly.
type AccessRecord struct {
	Time       time.Time `json:"time"`
	RequestID  string    `json:"request_id"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Query      string    `json:"query,omitempty"`
	Status     int       `json:"status"`
	Bytes      int       `json:"bytes"`
	DurationMS float64   `json:"duration_ms"`
	// Cache is the X-Cache disposition: "hit", "miss", or "" for
	// endpoints that never touch the result cache.
	Cache string `json:"cache,omitempty"`
	// Class is the failure class for non-2xx responses (the same
	// taxonomy the error JSON carries): bad_query, rejected, budget, …
	Class string `json:"class,omitempty"`
}

// NewAccessLogger returns a logger writing JSON lines to w. A nil
// receiver is valid and drops records, so call sites need no guards.
func NewAccessLogger(w io.Writer) *AccessLogger { return &AccessLogger{w: w} }

// Log writes one record as a single JSON line.
func (l *AccessLogger) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}
