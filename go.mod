module bddbddb

go 1.22
