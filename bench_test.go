// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablations for the design choices the
// paper calls out. Run:
//
//	go test -bench=. -benchmem
//
// Figure benches report custom metrics (contexts, peak live BDD nodes)
// via b.ReportMetric; cmd/experiments prints the same data as tables.
package bddbddb_test

import (
	"context"
	"fmt"
	"math/big"
	"testing"
	"time"

	"bddbddb/internal/analysis"
	"bddbddb/internal/bdd"
	"bddbddb/internal/callgraph"
	"bddbddb/internal/datalog"
	"bddbddb/internal/experiments"
	"bddbddb/internal/extract"
	"bddbddb/internal/resilience"
	"bddbddb/internal/synth"
)

// benchSet is the representative spread used by the per-analysis
// benchmarks: one small, one medium, one of the largest (megamek is the
// paper's headline 10^14-context case). Figure 3's statistics run on
// all 21; use cmd/experiments for full tables.
var benchSet = []string{"freetts", "sshdaemon", "megamek"}

var suite = experiments.NewSuite()

func load(b *testing.B, name string) *experiments.Prepared {
	b.Helper()
	p, err := suite.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFigure3Stats regenerates the vital-statistics table: program
// generation, extraction, call graph discovery, and Algorithm 4 path
// counting for all 21 benchmarks.
func BenchmarkFigure3Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure3(experiments.AllNames())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 21 {
			b.Fatalf("expected 21 rows, got %d", len(rows))
		}
	}
}

// figure4 runs one analysis column of Figure 4 over the bench set.
func figure4(b *testing.B, run func(p *experiments.Prepared) (*analysis.Result, error)) {
	for _, name := range benchSet {
		p := load(b, name)
		b.Run(name, func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				r, err := run(p)
				if err != nil {
					b.Fatal(err)
				}
				peak = r.Stats().PeakLiveNodes
			}
			b.ReportMetric(float64(peak), "peakNodes")
		})
	}
}

// BenchmarkFigure4CINoFilter is Figure 4's "context-insensitive without
// type filtering" column (Algorithm 1).
func BenchmarkFigure4CINoFilter(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunContextInsensitive(p.Facts, false, analysis.Config{})
	})
}

// BenchmarkFigure4CIFilter is the type-filtered column (Algorithm 2).
func BenchmarkFigure4CIFilter(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunContextInsensitive(p.Facts, true, analysis.Config{})
	})
}

// BenchmarkFigure4Discovery is the on-the-fly call graph column
// (Algorithm 3).
func BenchmarkFigure4Discovery(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunOnTheFly(p.Facts, analysis.Config{})
	})
}

// BenchmarkFigure4CSPointer is the context-sensitive pointer analysis
// column (Algorithm 5 over Algorithm 4's cloned graph).
func BenchmarkFigure4CSPointer(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunContextSensitive(p.Facts, p.Graph, analysis.Config{})
	})
}

// BenchmarkFigure4CSType is the context-sensitive type analysis column
// (Algorithm 6) — the paper finds it an order of magnitude faster than
// the pointer analysis.
func BenchmarkFigure4CSType(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunTypeAnalysis(p.Facts, p.Graph, analysis.Config{})
	})
}

// BenchmarkFigure4ThreadSensitive is the thread-sensitive column
// (Algorithm 7) — costs comparable to context-insensitive analysis.
func BenchmarkFigure4ThreadSensitive(b *testing.B) {
	figure4(b, func(p *experiments.Prepared) (*analysis.Result, error) {
		return analysis.RunThreadEscape(p.Facts, p.Graph, analysis.Config{})
	})
}

// BenchmarkFigure5Escape regenerates the escape-analysis table
// (captured/escaped sites, needed/unneeded syncs).
func BenchmarkFigure5Escape(b *testing.B) {
	for _, name := range benchSet {
		p := load(b, name)
		b.Run(name, func(b *testing.B) {
			var m analysis.EscapeMetrics
			for i := 0; i < b.N; i++ {
				r, err := analysis.RunThreadEscape(p.Facts, p.Graph, analysis.Config{})
				if err != nil {
					b.Fatal(err)
				}
				m = analysis.EscapeResults(r)
			}
			b.ReportMetric(float64(m.CapturedSites), "captured")
			b.ReportMetric(float64(m.EscapedSites), "escaped")
			b.ReportMetric(float64(m.UnneededSyncs), "unneededSyncs")
		})
	}
}

// BenchmarkFigure6TypeRefinement regenerates the precision table: the
// six analysis variants' multi-typed and refinable percentages.
func BenchmarkFigure6TypeRefinement(b *testing.B) {
	for _, name := range []string{"freetts", "sshdaemon"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := suite.Figure6([]string{name})
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				// The paper's monotonicity: precision improves left to
				// right (multi-typed percentage falls).
				if r.CSPointer.MultiPct > r.ProjectedCSPointer.MultiPct+1e-9 ||
					r.ProjectedCSPointer.MultiPct > r.CINoFilter.MultiPct+1e-9 {
					b.Fatalf("%s: precision not monotone: %+v", name, r)
				}
				if i == b.N-1 {
					b.ReportMetric(r.CINoFilter.MultiPct, "ciMulti%")
					b.ReportMetric(r.CSPointer.MultiPct, "csMulti%")
				}
			}
		})
	}
}

// BenchmarkScalingPaths sweeps call-skeleton depth to chart analysis
// time against the number of reduced call paths — the paper observes
// roughly O(lg^2 n) growth in the path count n (Section 6.2).
func BenchmarkScalingPaths(b *testing.B) {
	for _, layers := range []int{6, 10, 14, 18, 22} {
		p := synth.Params{
			Name: fmt.Sprintf("scale%d", layers), Seed: 99,
			Classes: 30, Interfaces: 4, Layers: layers, Width: 6, Fanout: 4,
			VirtualFrac: 0.3, OverrideFrac: 0.3, RecursionFrac: 0.1,
		}
		prog := synth.Generate(p)
		f, err := extract.Extract(prog, extract.Options{})
		if err != nil {
			b.Fatal(err)
		}
		g, err := analysis.DiscoverCallGraph(f, analysis.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("layers=%d", layers), func(b *testing.B) {
			var paths string
			for i := 0; i < b.N; i++ {
				r, err := analysis.RunContextSensitive(f, g, analysis.Config{})
				if err != nil {
					b.Fatal(err)
				}
				paths = r.Numbering.MaxContexts.String()
			}
			b.ReportMetric(float64(len(paths)), "pathDigits")
		})
	}
}

// BenchmarkAblationSemiNaive compares semi-naive (incrementalized)
// evaluation against full re-derivation (Section 2.4,
// "Incrementalization") on a deep transitive closure, where every
// non-incremental iteration re-joins the whole accumulated relation.
func BenchmarkAblationSemiNaive(b *testing.B) {
	const tcSrc = `
.domain N 1024
.relation e (a : N, b : N) input
.relation tc (a : N, b : N) output
tc(a, b) :- e(a, b).
tc(a, c) :- tc(a, b), e(b, c).
`
	// A long chain (many iterations) with pseudo-random shortcut edges
	// (a closure BDD with little structure): full re-derivation re-joins
	// the whole accumulated closure every round, semi-naive only the
	// frontier.
	prog := datalog.MustParse(tcSrc)
	for _, mode := range []struct {
		name  string
		noInc bool
	}{{"incrementalized", false}, {"full-rederivation", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := datalog.NewSolver(prog, datalog.Options{NoIncrementalization: mode.noInc})
				if err != nil {
					b.Fatal(err)
				}
				for v := uint64(0); v < 512; v++ {
					s.Relation("e").AddTuple(v, v+1)
					if v%7 == 0 {
						s.Relation("e").AddTuple(v, (v*2654435761)%1024)
					}
				}
				if err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBDDvsExplicit pits the BDD evaluator against the
// explicit tuple-set evaluator on a growing context-insensitive
// instance — and shows why only the BDD representation survives the
// cloned (context-sensitive) relations, whose tuple counts reach 10^14.
func BenchmarkAblationBDDvsExplicit(b *testing.B) {
	const tcSrc = `
.domain N 4096
.relation e (a : N, b : N) input
.relation tc (a : N, b : N) output
tc(a, b) :- e(a, b).
tc(a, c) :- tc(a, b), e(b, c).
`
	prog := datalog.MustParse(tcSrc)
	for _, n := range []int{64, 256, 512} {
		edges := make([][2]uint64, 0, n)
		for i := 0; i < n; i++ {
			edges = append(edges, [2]uint64{uint64(i), uint64((i + 1) % n)})
		}
		if n > 512 {
			continue // the explicit evaluator needs tens of seconds there
		}
		b.Run(fmt.Sprintf("bdd/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := datalog.NewSolver(prog, datalog.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range edges {
					s.Relation("e").AddTuple(e[0], e[1])
				}
				if err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("explicit/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ns, err := datalog.NewNaiveSolver(prog, datalog.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range edges {
					ns.AddTuple("e", e[0], e[1])
				}
				if err := ns.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVarOrder compares the shipped variable order against
// the "obvious" contexts-on-top order on a benchmark with 3×10^9
// contexts. Section 2.4.2: ordering is decisive (and NP-complete to
// optimize, hence the empirical search in internal/order).
func BenchmarkAblationVarOrder(b *testing.B) {
	p := load(b, "nfcchat")
	orders := []struct {
		name  string
		order []string
	}{
		{"shipped-VaboveC", nil}, // the tuned default
		{"naive-ContextTop", []string{"C", "I", "Z", "N", "M", "T", "F", "V", "H"}},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := analysis.RunContextSensitive(p.Facts, p.Graph, analysis.Config{Order: o.order})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTypeFilter shows the paper's Figure 4 observation
// that adding the type filter makes the analysis *faster* (smaller
// points-to sets) as well as more precise.
func BenchmarkAblationTypeFilter(b *testing.B) {
	p := load(b, "sshdaemon")
	for _, mode := range []struct {
		name   string
		filter bool
	}{{"no-filter", false}, {"type-filter", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := analysis.RunContextInsensitive(p.Facts, mode.filter, analysis.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEngineVsHandCoded reproduces the Section 6.4
// comparison: Algorithm 2 evaluated by the bddbddb engine against the
// same rules hand-scheduled as direct relational BDD operations. (The
// paper found its generated code beat the hand-tuned version by up to
// an order of magnitude — mostly thanks to incrementalization, which
// the hand-coded loop, like the paper's, does not do.)
func BenchmarkAblationEngineVsHandCoded(b *testing.B) {
	p := load(b, "sshdaemon")
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.RunContextInsensitive(p.Facts, true, analysis.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hand-coded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.RunHandCoded(p.Facts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationContextNumbering compares Algorithm 4's contiguous
// context numbering against a bit-reversal-scrambled numbering of the
// same cloned graph. Contiguity is "key to the scalability of the
// technique" (abstract): ranges become linear-sized BDDs and similar
// contexts share structure. Both arms load the invocation edges the
// same way (tuple by tuple), so only the numbering differs.
func BenchmarkAblationContextNumbering(b *testing.B) {
	prog := synth.Generate(synth.Params{
		Name: "numbering", Seed: 17, Classes: 16, Interfaces: 2,
		Layers: 12, Width: 4, Fanout: 2, VirtualFrac: 0.2, OverrideFrac: 0.2,
	})
	f, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := analysis.DiscoverCallGraph(f, analysis.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n, err := callgraph.Number(g)
	if err != nil {
		b.Fatal(err)
	}
	identity := func(c uint64) uint64 { return c }
	// Round the context domain to a power of two so the multiplicative
	// scramble (odd multiplier mod 2^k) is a true bijection: the two
	// arms then solve exactly isomorphic instances, differing only in
	// numbering. Knuth's multiplier turns every contiguous range into a
	// pseudo-random scatter, which is precisely the sharing Algorithm
	// 4's numbering exists to preserve.
	csize := uint64(1)
	for csize < n.ContextDomainSize(1<<16) {
		csize <<= 1
	}
	scramble := func(c uint64) uint64 {
		return (c * 2654435761) & (csize - 1)
	}
	for _, arm := range []struct {
		name string
		perm func(uint64) uint64
	}{{"contiguous", identity}, {"scrambled", scramble}} {
		b.Run(arm.name, func(b *testing.B) {
			var iecNodes int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, nodes, err := preparePermuted(f, n, csize, arm.perm)
				if err != nil {
					b.Fatal(err)
				}
				iecNodes = nodes
				b.StartTimer()
				if err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(iecNodes), "iecNodes")
		})
	}
}

// preparePermuted builds an Algorithm 5 solver whose context numbers
// all pass through perm. perm = identity reproduces Algorithm 4's
// numbering; a bijective scramble keeps the instance isomorphic but
// destroys the BDD sharing the contiguous scheme creates. Returns the
// loaded solver and the node count of the IEC BDD.
func preparePermuted(f *extract.Facts, n *callgraph.Numbering, csize uint64, perm func(uint64) uint64) (*datalog.Solver, int, error) {
	prog := datalog.MustParse(analysis.Algorithm5Src)
	opts := datalog.Options{DomainSizes: map[string]uint64{
		"V": uint64(len(f.Vars)), "H": uint64(len(f.Heaps)),
		"F": uint64(len(f.Fields)), "T": uint64(len(f.Types)),
		"I": uint64(len(f.Invokes)), "N": uint64(len(f.Names)),
		"M": uint64(len(f.Methods)), "Z": f.ZSize, "C": csize,
	}, Order: []string{"N", "F", "I", "M", "Z", "V", "C", "T", "H"}}
	s, err := datalog.NewSolver(prog, opts)
	if err != nil {
		return nil, 0, err
	}
	iecRel, err := n.MaterializeIEC(s.Universe(), "tmp",
		s.Relation("IEC").Attrs()[0], s.Relation("IEC").Attrs()[1],
		s.Relation("IEC").Attrs()[2], s.Relation("IEC").Attrs()[3])
	if err != nil {
		return nil, 0, err
	}
	iecRel.Iterate(func(vals []uint64) bool {
		s.Relation("IEC").AddTuple(perm(vals[0]), vals[1], perm(vals[2]), vals[3])
		return true
	})
	iecRel.Free()
	hcRel := n.MaterializeHC(s.Universe(), "tmp2",
		s.Relation("hC").Attrs()[0], s.Relation("hC").Attrs()[1], f.AllocMethod)
	hcRel.Iterate(func(vals []uint64) bool {
		s.Relation("hC").AddTuple(perm(vals[0]), vals[1])
		return true
	})
	hcRel.Free()
	for name, tuples := range map[string][]extract.Tuple{
		"vP0": f.VP0, "store": f.Store, "load": f.Load,
		"vT": f.VT, "hT": f.HT, "aT": f.AT,
		"actual": f.Actual, "formal": f.Formal,
		"Mret": f.Mret, "Iret": f.Iret,
	} {
		r := s.Relation(name)
		for _, t := range tuples {
			r.AddTuple(t...)
		}
	}
	nodes := s.Universe().M.NodeCount(s.Relation("IEC").Root())
	return s, nodes, nil
}

// BenchmarkAblationRangePrimitive measures the Section 4.1 range
// primitive ("creates a BDD representation of contiguous ranges of
// numbers in O(k) operations") against the naive per-value union.
func BenchmarkAblationRangePrimitive(b *testing.B) {
	for _, span := range []uint64{1 << 10, 1 << 14} {
		m := bdd.New(1<<18, 1<<14)
		d := m.DeclareDomain("D", 1<<20)
		if err := m.FinalizeOrder(""); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rangePrimitive/span=%d", span), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := d.Range(17, 17+span)
				m.Deref(r)
			}
		})
		b.Run(fmt.Sprintf("naiveUnion/span=%d", span), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := d.RangeNaive(17, 17+span)
				m.Deref(r)
			}
		})
	}
}

// BenchmarkContextCounting measures Algorithm 4 alone: exact big-integer
// path counting over the largest call graph (pmd's 6×10^23 paths).
func BenchmarkContextCounting(b *testing.B) {
	p := load(b, "pmd")
	var total *big.Int
	for i := 0; i < b.N; i++ {
		n, err := callgraph.Number(p.Graph)
		if err != nil {
			b.Fatal(err)
		}
		total = n.MaxContexts
	}
	b.ReportMetric(float64(len(total.String())), "pathDigits")
}

// BenchmarkAblationPlanner isolates the new plan optimizer: the same
// context-sensitive pointer analysis (the richest rule plans in the
// repo) evaluated with all rewrite passes on, with only join reordering
// disabled, and with the legacy pinned textual-order execution
// (reordering, hoisting, and dead-op elimination all off).
func BenchmarkAblationPlanner(b *testing.B) {
	p := load(b, "sshdaemon")
	for _, mode := range []struct {
		name string
		plan datalog.PlanConfig
	}{
		{"optimized", datalog.PlanConfig{}},
		{"no-reorder", datalog.PlanConfig{NoReorder: true}},
		{"legacy", datalog.LegacyPlan()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := analysis.RunContextSensitive(p.Facts, p.Graph, analysis.Config{Plan: mode.plan})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBudgetOverhead isolates the resilience layer's cost: the
// same context-sensitive pointer analysis with no controller (nil
// checks only) against a fully armed one — cancelable context, node and
// iteration budgets, and a deadline, which together enable the
// strided polls in every BDD recursion, the budget checks at table
// growth/GC, and the per-rule cancellation checks. The limits sit far
// above the workload's needs so both arms do identical work; the
// acceptance bar is <2% overhead (BENCH_resilience.json records it).
func BenchmarkBudgetOverhead(b *testing.B) {
	p := load(b, "sshdaemon")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, mode := range []struct {
		name string
		cfg  analysis.Config
	}{
		{"baseline", analysis.Config{}},
		{"budgeted", analysis.Config{
			Context: ctx,
			Budget: resilience.Budget{
				MaxLiveNodes:  1 << 30,
				Timeout:       time.Hour,
				MaxIterations: 1 << 40,
			},
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.RunContextSensitive(p.Facts, p.Graph, mode.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHoisting measures literal-normalization hoisting
// alone on a many-iteration recursive solve, where every iteration of
// the legacy path re-reshapes the invariant edge relation.
func BenchmarkAblationHoisting(b *testing.B) {
	const tcSrc = `
.domain N 4096
.relation e (a : N, b : N) input
.relation tc (x : N, y : N) output
tc(x, y) :- e(x, y).
tc(x, z) :- tc(x, y), e(y, z).
`
	prog := datalog.MustParse(tcSrc)
	for _, mode := range []struct {
		name string
		plan datalog.PlanConfig
	}{
		{"hoisted", datalog.PlanConfig{}},
		{"per-iteration", datalog.PlanConfig{NoHoist: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := datalog.NewSolver(prog, datalog.Options{Plan: mode.plan})
				if err != nil {
					b.Fatal(err)
				}
				for v := uint64(0); v < 2048; v++ {
					s.Relation("e").AddTuple(v, v+1)
				}
				if err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
