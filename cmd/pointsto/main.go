// Command pointsto runs the paper's analyses on a ".jp" program file.
//
// Usage:
//
//	pointsto -algo ci|cif|otf|cs|type|threads [-var Class.method/v] prog.jp
//
// Algorithms: ci (Algorithm 1), cif (Algorithm 2, type-filtered), otf
// (Algorithm 3, on-the-fly call graph), cs (Algorithm 5,
// context-sensitive), type (Algorithm 6), threads (Algorithm 7 with
// escape analysis). -var prints the points-to set of one variable.
//
// Observability: -trace writes a Chrome trace-event file of the whole
// pipeline (parse → extract → analyze → query, with nested
// stratum/iteration/rule spans under each solve), -metrics a flat
// metrics JSON (solve time, peak live BDD nodes, GC count, per-cache
// hit ratios, relation cardinalities), -v logs phase progress to
// stderr, and -cpuprofile/-memprofile write runtime/pprof profiles.
//
// Resilience: -timeout and -max-nodes bound the run (exit code 3 on
// exhaustion), Ctrl-C cancels it cleanly (exit code 4), -checkpoint-dir
// and -resume save/restore the solve across runs. Context-sensitive
// runs that blow their budget degrade to the context-insensitive
// result (noted on stderr) instead of failing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bddbddb/internal/analysis"
	"bddbddb/internal/callgraph"
	"bddbddb/internal/datalog"
	"bddbddb/internal/datalog/plan"
	"bddbddb/internal/extract"
	"bddbddb/internal/obs"
	"bddbddb/internal/program"
	"bddbddb/internal/resilience"
)

func main() {
	algo := flag.String("algo", "otf", "analysis: ci|cif|otf|cs|type|threads")
	varName := flag.String("var", "", "print the points-to set of this variable (Class.method/v)")
	noOpt := flag.Bool("noopt", false, "disable the Datalog plan optimizer (pinned textual-order execution)")
	backend := datalog.BackendFlag{Mode: datalog.BackendAuto}
	flag.Var(&backend, "backend", "relation storage backend: auto, bdd, or explicit")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pointsto [flags] program.jp")
		flag.Usage()
		os.Exit(2)
	}
	sess, err := oflags.Start("pointsto")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pointsto:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	runErr := run(ctx, sess, rflags, flag.Arg(0), *algo, *varName, *noOpt, backend.Mode)
	stop()
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pointsto:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "pointsto:", runErr)
		os.Exit(resilience.ExitCode(runErr))
	}
}

func run(ctx context.Context, sess *obs.Session, rflags resilience.Flags, path, algo, varName string, noOpt bool, backend plan.BackendMode) error {
	tr := sess.Tracer
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	obs.Begin(tr, "pointsto.parse")
	prog, err := program.Parse(string(src))
	obs.End(tr)
	if err != nil {
		return err
	}
	obs.Begin(tr, "pointsto.extract")
	f, err := extract.Extract(prog, extract.Options{})
	obs.End(tr)
	if err != nil {
		return err
	}
	cfg := analysis.Config{
		Tracer: tr, Metrics: sess.Metrics,
		Context: ctx, Budget: rflags.Budget(),
		CheckpointDir: rflags.CheckpointDir, Resume: rflags.Resume,
	}
	if noOpt {
		cfg.Plan = datalog.LegacyPlan()
	}
	cfg.Plan.Backend = backend
	var res *analysis.Result
	obs.Begin(tr, "pointsto.analyze", obs.A("algo", algo))
	switch algo {
	case "ci":
		res, err = analysis.RunContextInsensitive(f, false, cfg)
	case "cif":
		res, err = analysis.RunContextInsensitive(f, true, cfg)
	case "otf":
		res, err = analysis.RunOnTheFly(f, cfg)
	case "cs":
		res, err = analysis.RunContextSensitive(f, nil, cfg)
	case "type":
		res, err = analysis.RunTypeAnalysis(f, nil, cfg)
	case "threads":
		res, err = analysis.RunThreadEscape(f, nil, cfg)
	default:
		err = fmt.Errorf("unknown algorithm %q", algo)
	}
	obs.End(tr)
	if err != nil {
		return err
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "pointsto: degraded to context-insensitive result: %v\n", res.DegradedCause)
	}
	obs.Begin(tr, "pointsto.query")
	defer obs.End(tr)
	st := res.Stats()
	fmt.Printf("%s: solved in %v, %d iterations, peak %d live BDD nodes\n",
		algo, st.SolveTime, st.Iterations, st.PeakLiveNodes)
	if res.Numbering != nil {
		fmt.Printf("contexts: max %s per method, %s total reduced call paths\n",
			callgraph.FormatPathCount(res.Numbering.MaxContexts),
			callgraph.FormatPathCount(res.Numbering.TotalPaths))
	}
	switch algo {
	case "type":
		fmt.Printf("vTC: %s tuples\n", res.RelationSize("vTC"))
	case "threads":
		m := analysis.EscapeResults(res)
		fmt.Printf("captured sites: %d, escaped sites: %d, unneeded syncs: %d, needed syncs: %d\n",
			m.CapturedSites, m.EscapedSites, m.UnneededSyncs, m.NeededSyncs)
	default:
		pairs := res.PointsToPairs()
		fmt.Printf("points-to pairs (context-projected): %d\n", len(pairs))
	}
	if varName != "" {
		v := f.VarIndex(varName)
		if v < 0 {
			return fmt.Errorf("unknown variable %q (names are Class.method/var)", varName)
		}
		fmt.Printf("%s points to:\n", varName)
		for pair := range res.PointsToPairs() {
			if pair[0] == uint64(v) {
				fmt.Printf("  %s\n", f.Heaps[pair[1]])
			}
		}
	}
	return nil
}
