// Command pointsto runs the paper's analyses on a ".jp" program file.
//
// Usage:
//
//	pointsto -algo ci|cif|otf|cs|type|threads [-var Class.method/v] prog.jp
//
// Algorithms: ci (Algorithm 1), cif (Algorithm 2, type-filtered), otf
// (Algorithm 3, on-the-fly call graph), cs (Algorithm 5,
// context-sensitive), type (Algorithm 6), threads (Algorithm 7 with
// escape analysis). -var prints the points-to set of one variable.
package main

import (
	"flag"
	"fmt"
	"os"

	"bddbddb/internal/analysis"
	"bddbddb/internal/callgraph"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

func main() {
	algo := flag.String("algo", "otf", "analysis: ci|cif|otf|cs|type|threads")
	varName := flag.String("var", "", "print the points-to set of this variable (Class.method/v)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pointsto [flags] program.jp")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *algo, *varName); err != nil {
		fmt.Fprintln(os.Stderr, "pointsto:", err)
		os.Exit(1)
	}
}

func run(path, algo, varName string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := program.Parse(string(src))
	if err != nil {
		return err
	}
	f, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		return err
	}
	var res *analysis.Result
	switch algo {
	case "ci":
		res, err = analysis.RunContextInsensitive(f, false, analysis.Config{})
	case "cif":
		res, err = analysis.RunContextInsensitive(f, true, analysis.Config{})
	case "otf":
		res, err = analysis.RunOnTheFly(f, analysis.Config{})
	case "cs":
		res, err = analysis.RunContextSensitive(f, nil, analysis.Config{})
	case "type":
		res, err = analysis.RunTypeAnalysis(f, nil, analysis.Config{})
	case "threads":
		res, err = analysis.RunThreadEscape(f, nil, analysis.Config{})
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	st := res.Stats()
	fmt.Printf("%s: solved in %v, %d iterations, peak %d live BDD nodes\n",
		algo, st.SolveTime, st.Iterations, st.PeakLiveNodes)
	if res.Numbering != nil {
		fmt.Printf("contexts: max %s per method, %s total reduced call paths\n",
			callgraph.FormatPathCount(res.Numbering.MaxContexts),
			callgraph.FormatPathCount(res.Numbering.TotalPaths))
	}
	switch algo {
	case "type":
		fmt.Printf("vTC: %s tuples\n", res.RelationSize("vTC"))
	case "threads":
		m := analysis.EscapeResults(res)
		fmt.Printf("captured sites: %d, escaped sites: %d, unneeded syncs: %d, needed syncs: %d\n",
			m.CapturedSites, m.EscapedSites, m.UnneededSyncs, m.NeededSyncs)
	default:
		pairs := res.PointsToPairs()
		fmt.Printf("points-to pairs (context-projected): %d\n", len(pairs))
	}
	if varName != "" {
		v := f.VarIndex(varName)
		if v < 0 {
			return fmt.Errorf("unknown variable %q (names are Class.method/var)", varName)
		}
		fmt.Printf("%s points to:\n", varName)
		for pair := range res.PointsToPairs() {
			if pair[0] == uint64(v) {
				fmt.Printf("  %s\n", f.Heaps[pair[1]])
			}
		}
	}
	return nil
}
