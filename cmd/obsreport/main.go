// Command obsreport reads the observability files the other commands
// emit — flat metrics JSON (-metrics, BENCH_*.json), Chrome
// trace-event JSON (-trace), and sampler time-series dumps
// (/debug/timeseries, SIGQUIT) — and reduces them to the views a perf
// investigation starts from.
//
// Usage:
//
//	obsreport top [-k 10] metrics.json          hottest rules and ops
//	obsreport phases trace.json                 per-phase time breakdown
//	obsreport timeseries ts.json                per-series min/mean/max/last
//	obsreport diff [-threshold 10%] [-fail] old.json new.json
//
// diff compares two metrics files and prints every key whose relative
// change meets the threshold, flagging changes in the bad direction
// (cost-like keys up, goodness-like keys down) as regressions. With
// -fail it exits 1 when any regression is found, which makes it usable
// as a CI perf gate:
//
//	obsreport diff -threshold 25% -fail BENCH_serve.json new.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"bddbddb/internal/obs"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "top":
		err = runTop(args)
	case "phases":
		err = runPhases(args)
	case "timeseries":
		err = runTimeseries(args)
	case "diff":
		err = runDiff(args)
	default:
		fmt.Fprintf(os.Stderr, "obsreport: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  obsreport top [-k 10] metrics.json
  obsreport phases trace.json
  obsreport timeseries ts.json
  obsreport diff [-threshold 10%] [-fail] old.json new.json
`)
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	k := fs.Int("k", 10, "show the k most expensive entries (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("top wants one metrics file")
	}
	mf, err := obs.ReadMetricsFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if mf.Name != "" {
		fmt.Printf("# %s\n", mf.Name)
	}
	rules := obs.TopRules(mf.Metrics, *k)
	if len(rules) > 0 {
		fmt.Printf("hottest rules (by cumulative seconds):\n")
		fmt.Printf("%-24s %12s %10s %12s\n", "rule", "seconds", "applies", "tuples")
		for _, rc := range rules {
			fmt.Printf("%-24s %12.6f %10.0f %12.0f\n", rc.Key, rc.Seconds, rc.Applications, rc.Tuples)
		}
	}
	ops := obs.TopOps(mf.Metrics, *k)
	if len(ops) > 0 {
		fmt.Printf("hottest ops (by execution count):\n")
		fmt.Printf("%-32s %12s\n", "op", "count")
		for _, oc := range ops {
			fmt.Printf("%-32s %12.0f\n", oc.Key, oc.Count)
		}
	}
	if len(rules) == 0 && len(ops) == 0 {
		fmt.Println("no datalog.rule.* or datalog.op.* metrics in file")
	}
	return nil
}

func runPhases(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("phases wants one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	phases, err := obs.ReadTracePhases(f)
	if err != nil {
		return err
	}
	if len(phases) == 0 {
		fmt.Println("no complete spans in trace")
		return nil
	}
	fmt.Printf("%-32s %12s %12s %8s\n", "phase", "total_ms", "self_ms", "count")
	for _, p := range phases {
		fmt.Printf("%-32s %12.3f %12.3f %8d\n",
			p.Name, float64(p.TotalUS)/1000, float64(p.SelfUS)/1000, p.Count)
	}
	return nil
}

func runTimeseries(args []string) error {
	fs := flag.NewFlagSet("timeseries", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("timeseries wants one time-series file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	interval, samples, err := obs.ReadTimeseries(f)
	if err != nil {
		return err
	}
	fmt.Printf("%d samples at %gs interval\n", len(samples), interval)
	if len(samples) == 0 {
		return nil
	}
	span := samples[len(samples)-1].Time.Sub(samples[0].Time)
	fmt.Printf("window: %s .. %s (%s)\n",
		samples[0].Time.Format("15:04:05"), samples[len(samples)-1].Time.Format("15:04:05"), span.Round(1e6))
	fmt.Printf("%-40s %12s %12s %12s %12s\n", "series", "min", "mean", "max", "last")
	for _, ss := range obs.SummarizeSamples(samples) {
		fmt.Printf("%-40s %12.3f %12.3f %12.3f %12.3f\n", ss.Key, ss.Min, ss.Mean, ss.Max, ss.Last)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.String("threshold", "10%", "minimum relative change to report (e.g. 10%, 0.05)")
	failOnRegression := fs.Bool("fail", false, "exit 1 when any regression meets the threshold (CI gate)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants two metrics files: old new")
	}
	th, err := obs.ParseThreshold(*threshold)
	if err != nil {
		return err
	}
	oldMF, err := obs.ReadMetricsFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newMF, err := obs.ReadMetricsFile(fs.Arg(1))
	if err != nil {
		return err
	}
	entries := obs.DiffMetrics(oldMF.Metrics, newMF.Metrics, th)
	if len(entries) == 0 {
		fmt.Printf("no changes >= %.0f%%\n", th*100)
		return nil
	}
	regressions := 0
	fmt.Printf("%-44s %14s %14s %10s\n", "key", "old", "new", "delta")
	for _, e := range entries {
		switch {
		case e.Missing == "new":
			fmt.Printf("%-44s %14.6g %14s %10s\n", e.Key, e.Old, "-", "gone")
		case e.Missing == "old":
			fmt.Printf("%-44s %14s %14.6g %10s\n", e.Key, "-", e.New, "added")
		default:
			mark := ""
			if e.Regression {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Printf("%-44s %14.6g %14.6g %9.1f%%%s\n", e.Key, e.Old, e.New, deltaPct(e.Delta), mark)
		}
	}
	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, th*100)
		if *failOnRegression {
			os.Exit(1)
		}
	}
	return nil
}

func deltaPct(d float64) float64 {
	if math.IsInf(d, 1) {
		return math.Inf(1)
	}
	return d * 100
}
