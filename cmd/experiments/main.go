// Command experiments regenerates the paper's evaluation tables.
//
// Usage:
//
//	experiments -figure 3            # Figure 3 on all 21 benchmarks
//	experiments -figure 4 -benches freetts,jetty
//	experiments -figure all -small   # every figure on the small subset
//	experiments -figure 4 -json BENCH_figure4.json
//	experiments -figure precision -json BENCH_precision.json
//
// -json writes the figure tables as flat metrics JSON (the BENCH_*.json
// trajectory format) with keys like figure4.<bench>.cs_pointer.time_sec.
// The shared observability flags (-trace, -metrics, -v, -cpuprofile,
// -memprofile) instrument the analysis runs themselves.
//
// Resilience: -timeout and -max-nodes bound the whole regeneration
// (exit code 3 on exhaustion) and Ctrl-C cancels it (exit code 4).
// -checkpoint-dir/-resume are rejected here: a figure runs many solves
// against one directory; use cmd/pointsto or cmd/bddbddb to checkpoint
// a single solve.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"bddbddb/internal/analysis"
	"bddbddb/internal/experiments"
	"bddbddb/internal/obs"
	"bddbddb/internal/order"
	"bddbddb/internal/resilience"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 3|4|5|6|precision|all")
	benches := flag.String("benches", "", "comma-separated benchmark names (default: all for figure 3, the small subset otherwise)")
	small := flag.Bool("small", false, "restrict every figure to the small subset")
	search := flag.String("ordersearch", "", "run the Section 2.4.2 empirical variable-order search for Algorithm 5 on this benchmark")
	trials := flag.Int("trials", 12, "order-search trial budget")
	jsonPath := flag.String("json", "", "write the figure tables as metrics JSON to this file")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if rflags.CheckpointDir != "" || rflags.Resume != "" {
		fmt.Fprintln(os.Stderr, "experiments: -checkpoint-dir/-resume need a single solve; use cmd/pointsto or cmd/bddbddb")
		os.Exit(2)
	}

	sess, err := oflags.Start("experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		sess.Close()
		stop()
		os.Exit(resilience.ExitCode(err))
	}

	if *search != "" {
		if err := runOrderSearch(*search, *trials); err != nil {
			fatal(err)
		}
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		return
	}

	names := experiments.AllNames()
	defaultSubset := func() []string {
		if *small {
			return experiments.SmallNames()
		}
		return experiments.AllNames()
	}
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	s := experiments.NewSuite()
	s.SetObs(sess.Tracer)
	s.SetControl(ctx, rflags.Budget())
	table := make(map[string]float64) // accumulated -json figure metrics
	run := func(fig string) error {
		switch fig {
		case "3":
			rows, err := s.Figure3(pick(*benches, names, experiments.AllNames()))
			if err != nil {
				return err
			}
			fmt.Println("Figure 3: benchmark vital statistics (measured | paper)")
			experiments.WriteFigure3(os.Stdout, rows)
			merge(table, experiments.Figure3Metrics(rows))
		case "4":
			rows, err := s.Figure4(pick(*benches, names, defaultSubset()))
			if err != nil {
				return err
			}
			fmt.Println("Figure 4: analysis times and peak live BDD memory")
			experiments.WriteFigure4(os.Stdout, rows)
			merge(table, experiments.Figure4Metrics(rows))
		case "5":
			rows, err := s.Figure5(pick(*benches, names, defaultSubset()))
			if err != nil {
				return err
			}
			fmt.Println("Figure 5: escape analysis results")
			experiments.WriteFigure5(os.Stdout, rows)
			merge(table, experiments.Figure5Metrics(rows))
		case "6":
			rows, err := s.Figure6(pick(*benches, names, defaultSubset()))
			if err != nil {
				return err
			}
			fmt.Println("Figure 6: type refinement precision (multi-typed % / refinable %)")
			experiments.WriteFigure6(os.Stdout, rows)
			merge(table, experiments.Figure6Metrics(rows))
		case "precision":
			reps, err := s.Precision(pick(*benches, names, experiments.PrecisionNames()))
			if err != nil {
				return err
			}
			fmt.Println("Precision: {ci, cs, heap-cs} mode comparison")
			experiments.WritePrecision(os.Stdout, reps)
			merge(table, experiments.PrecisionMetrics(reps))
		default:
			return fmt.Errorf("unknown figure %q", fig)
		}
		fmt.Println()
		return nil
	}
	figs := []string{*figure}
	if *figure == "all" {
		figs = []string{"3", "4", "5", "6"}
	}
	for _, fig := range figs {
		if err := run(fig); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		if err := writeTable(*jsonPath, table); err != nil {
			fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func merge(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] = v
	}
}

// writeTable writes the accumulated figure metrics as BENCH-style JSON.
func writeTable(path string, table map[string]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMetricsJSON(f, "experiments", table); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pick returns explicit names when given, otherwise the default set.
func pick(explicit string, explicitNames, def []string) []string {
	if explicit != "" {
		return explicitNames
	}
	return def
}

// runOrderSearch hill-climbs over logical-domain orders for the
// context-sensitive pointer analysis on one benchmark, printing each
// trial — the reproduction of bddbddb's automatic order exploration.
func runOrderSearch(bench string, trials int) error {
	s := experiments.NewSuite()
	p, err := s.Load(bench)
	if err != nil {
		return err
	}
	initial := order.Default(order.ModeCS)
	res, err := order.Search(initial, func(ord []string) order.Cost {
		start := time.Now()
		r, err := analysis.RunContextSensitive(p.Facts, p.Graph, analysis.Config{Order: ord})
		if err != nil {
			return order.Cost{Err: err}
		}
		c := order.Cost{Time: time.Since(start), Nodes: r.Stats().PeakLiveNodes}
		fmt.Printf("  %-40s %10v  %9d peak nodes\n", strings.Join(ord, "_"), c.Time.Round(time.Millisecond), c.Nodes)
		return c
	}, order.Options{MaxTrials: trials, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("best: %s (%v, %d peak nodes) after %d trials\n",
		strings.Join(res.Best, "_"), res.BestCost.Time.Round(time.Millisecond), res.BestCost.Nodes, res.Trials)
	return nil
}
