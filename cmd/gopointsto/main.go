// Command gopointsto points the paper's analyses at real Go packages.
//
// Usage:
//
//	gopointsto [flags] ./path/to/pkg [./other/pkg/...]
//
// Patterns are directories inside one module, optionally with a
// trailing /... for recursion (e.g. `gopointsto ./internal/order` or
// `gopointsto ./...` from the module root). The packages are parsed
// and type-checked with the standard library only, lowered into the
// IR by internal/frontend/gofront, and solved exactly like a .jp
// program — the whole downstream pipeline is shared with cmd/pointsto.
//
// Algorithms (-algo): ci, cif, otf, cs (default), heap-cs, type,
// threads — the same set as pointsto plus Algorithm 8's heap-cloned
// mode. -entries picks the analysis roots: auto (main.main when
// present, else every exported function), main, exported, or all.
//
// Reports (-report, comma-separated):
//
//	nil        dereferences of variables with empty points-to sets
//	escape     goroutine escape analysis: allocation sites reachable
//	           from more than one goroutine, with source positions
//	           (runs Algorithm 7 in addition to -algo if needed)
//	precision  {ci, cs, heap-cs} mode comparison: how much each
//	           refinement shrinks the points-to and alias relations
//	           (solves all three modes regardless of -algo)
//
// Allocation sites in reports are labeled `file:line new T` when the
// lowering metadata can resolve them, falling back to the raw
// Class.method@site:Type heap name for synthetic objects.
//
// Both reports are heuristics bounded by the frontend's documented
// approximations — see the Caveats table in internal/frontend/gofront
// and DESIGN.md §11.
//
// -bench-out FILE writes the session metrics (lowering tallies, solve
// time, BDD statistics) as a metrics JSON. Observability (-trace,
// -metrics, -v, -cpuprofile) and resilience (-timeout, -max-nodes,
// -checkpoint-dir, -resume) flags are shared with the other commands.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"bddbddb/internal/analysis"
	"bddbddb/internal/callgraph"
	"bddbddb/internal/datalog"
	"bddbddb/internal/datalog/plan"
	"bddbddb/internal/extract"
	"bddbddb/internal/frontend/gofront"
	"bddbddb/internal/obs"
	"bddbddb/internal/precision"
	"bddbddb/internal/resilience"
)

// maxReportLines caps each report's printed rows (the totals always print).
const maxReportLines = 20

func main() {
	algo := flag.String("algo", "cs", "analysis: ci|cif|otf|cs|heap-cs|type|threads")
	entries := flag.String("entries", "auto", "analysis roots: auto|main|exported|all")
	report := flag.String("report", "", "comma-separated reports: nil,escape,precision")
	varName := flag.String("var", "", "print the points-to set of this variable (Class.method/v)")
	noOpt := flag.Bool("noopt", false, "disable the Datalog plan optimizer (pinned textual-order execution)")
	backend := datalog.BackendFlag{Mode: datalog.BackendAuto}
	flag.Var(&backend, "backend", "relation storage backend: auto, bdd, or explicit")
	benchOut := flag.String("bench-out", "", "write lowering+solve metrics JSON to this file")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gopointsto [flags] ./pkg [./pkg/...]")
		flag.Usage()
		os.Exit(2)
	}
	sess, err := oflags.Start("gopointsto")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopointsto:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	runErr := run(ctx, sess, rflags, flag.Args(), *algo, *entries, *report, *varName, *noOpt, backend.Mode, *benchOut)
	stop()
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gopointsto:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "gopointsto:", runErr)
		os.Exit(resilience.ExitCode(runErr))
	}
}

func run(ctx context.Context, sess *obs.Session, rflags resilience.Flags,
	patterns []string, algo, entries, report, varName string, noOpt bool, backend plan.BackendMode, benchOut string) error {
	tr := sess.Tracer
	reports := make(map[string]bool)
	for _, r := range strings.Split(report, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if r != "nil" && r != "escape" && r != "precision" {
			return fmt.Errorf("unknown report %q (want nil, escape, or precision)", r)
		}
		reports[r] = true
	}

	obs.Begin(tr, "gopointsto.lower")
	res, err := gofront.Lower(patterns, gofront.Options{Entries: gofront.EntryMode(entries)})
	obs.End(tr)
	if err != nil {
		return err
	}
	meta := res.Meta
	st := res.Prog.Stats()
	fmt.Printf("lowered %d packages (%d requested): %d classes, %d methods, %d stmts, %d allocation sites\n",
		len(meta.Packages), len(meta.Requested), st.Classes, st.Methods, st.Stmts, st.Allocs)
	if meta.TypeErrors > 0 {
		fmt.Printf("tolerated %d type errors from placeholder imports (external code is opaque)\n", meta.TypeErrors)
	}
	if meta.Goroutines > 0 {
		fmt.Printf("goroutines: %d spawn sites lowered as Thread subclasses\n", meta.Goroutines)
	}

	obs.Begin(tr, "gopointsto.extract")
	f, err := extract.Extract(res.Prog, extract.Options{})
	obs.End(tr)
	if err != nil {
		return err
	}

	cfg := analysis.Config{
		Tracer: tr, Metrics: sess.Metrics,
		Context: ctx, Budget: rflags.Budget(),
		CheckpointDir: rflags.CheckpointDir, Resume: rflags.Resume,
	}
	if noOpt {
		cfg.Plan = datalog.LegacyPlan()
	}
	cfg.Plan.Backend = backend
	var r *analysis.Result
	obs.Begin(tr, "gopointsto.analyze", obs.A("algo", algo))
	switch algo {
	case "ci":
		r, err = analysis.RunContextInsensitive(f, false, cfg)
	case "cif":
		r, err = analysis.RunContextInsensitive(f, true, cfg)
	case "otf":
		r, err = analysis.RunOnTheFly(f, cfg)
	case "cs":
		r, err = analysis.RunContextSensitive(f, nil, cfg)
	case "heap-cs":
		r, err = analysis.RunHeapCloned(f, nil, cfg)
	case "type":
		r, err = analysis.RunTypeAnalysis(f, nil, cfg)
	case "threads":
		r, err = analysis.RunThreadEscape(f, nil, cfg)
	default:
		err = fmt.Errorf("unknown algorithm %q", algo)
	}
	obs.End(tr)
	if err != nil {
		return err
	}
	if r.Degraded {
		fmt.Fprintf(os.Stderr, "gopointsto: degraded to context-insensitive result: %v\n", r.DegradedCause)
	}
	solved := r.Stats()
	fmt.Printf("%s: solved in %v, %d iterations, peak %d live BDD nodes\n",
		algo, solved.SolveTime, solved.Iterations, solved.PeakLiveNodes)
	if r.Numbering != nil {
		fmt.Printf("contexts: max %s per method, %s total reduced call paths\n",
			callgraph.FormatPathCount(r.Numbering.MaxContexts),
			callgraph.FormatPathCount(r.Numbering.TotalPaths))
	}
	pairs := r.PointsToPairs()
	fmt.Printf("points-to pairs (context-projected): %d over %d variables and %d heap objects\n",
		len(pairs), len(f.Vars), len(f.Heaps))

	if varName != "" {
		v := f.VarIndex(varName)
		if v < 0 {
			return fmt.Errorf("unknown variable %q (names are Class.method/var)", varName)
		}
		fmt.Printf("%s points to:\n", varName)
		var labels []string
		for pair := range pairs {
			if pair[0] == uint64(v) {
				labels = append(labels, heapLabel(f.Heaps[pair[1]], meta))
			}
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Printf("  %s\n", l)
		}
	}

	if reports["nil"] {
		printNilReport(res, f, pairs)
	}
	if reports["precision"] {
		if err := printPrecisionReport(tr, res, f, cfg); err != nil {
			return err
		}
	}
	if reports["escape"] || algo == "threads" {
		er := r
		if algo != "threads" {
			obs.Begin(tr, "gopointsto.escape")
			er, err = analysis.RunThreadEscape(f, nil, cfg)
			obs.End(tr)
			if err != nil {
				return err
			}
		}
		printEscapeReport(er, f, meta)
	}

	if benchOut != "" {
		if err := writeBench(benchOut, sess, res, f, len(pairs)); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", benchOut)
	}
	return nil
}

// heapLabel renders a heap object as `file:line new T` when the
// lowering metadata resolves its allocation site, else the raw name.
func heapLabel(heap string, meta *gofront.Meta) string {
	s, ok := gofront.ParseHeapSite(heap, meta)
	if !ok || !s.Pos.IsValid() {
		return heap
	}
	return fmt.Sprintf("%s:%d new %s", s.Pos.Filename, s.Pos.Line, s.Type)
}

// printPrecisionReport solves the {ci, cs, heap-cs} ladder over the
// lowered program and prints how much each refinement step shrinks
// the relations, with source-resolved allocation-site labels and the
// nil-deref heuristic as the per-mode client proxy.
func printPrecisionReport(tr obs.Tracer, res *gofront.Result, f *extract.Facts, cfg analysis.Config) error {
	obs.Begin(tr, "gopointsto.precision")
	defer obs.End(tr)
	rep, err := precision.Compare("go", f, cfg, precision.Options{
		HeapLabel: func(h int) string { return heapLabel(f.Heaps[h], res.Meta) },
		NilReport: func(pairs map[[2]uint64]bool) int {
			return len(gofront.NilDerefs(res.Prog, res.Meta, f, pairs))
		},
	})
	if err != nil {
		return err
	}
	fmt.Println()
	rep.WriteText(os.Stdout)
	return nil
}

// printNilReport lists dereferences the solver cannot prove reachable
// from any allocation site.
func printNilReport(res *gofront.Result, f *extract.Facts, pairs map[[2]uint64]bool) {
	derefs := gofront.NilDerefs(res.Prog, res.Meta, f, pairs)
	fmt.Printf("\nnil-deref report: %d dereferences of variables with empty points-to sets\n", len(derefs))
	fmt.Println("(heuristic: external and untracked values also produce empty sets — see the caveats table)")
	for i, d := range derefs {
		if i == maxReportLines {
			fmt.Printf("  ... and %d more\n", len(derefs)-maxReportLines)
			break
		}
		loc := "synthetic"
		if d.Pos.IsValid() {
			loc = d.Pos.String()
		}
		fmt.Printf("  %s: %s of %s in %s\n", loc, d.What, d.Var, d.Method)
	}
}

// printEscapeReport lists allocation sites reachable from more than
// one thread, resolved back to source positions.
func printEscapeReport(r *analysis.Result, f *extract.Facts, meta *gofront.Meta) {
	m := analysis.EscapeResults(r)
	fmt.Printf("\ngoroutine-escape report: %d captured sites, %d escaped sites, %d unneeded syncs, %d needed syncs\n",
		m.CapturedSites, m.EscapedSites, m.UnneededSyncs, m.NeededSyncs)
	escaped := make(map[uint64]bool)
	r.Relation("escaped").Iterate(func(vals []uint64) bool {
		escaped[vals[1]] = true
		return true
	})
	var sites []gofront.EscapeSite
	for h := range escaped {
		if int(h) >= len(f.Heaps) {
			continue
		}
		if s, ok := gofront.ParseHeapSite(f.Heaps[h], meta); ok {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Heap < sites[j].Heap })
	for i, s := range sites {
		if i == maxReportLines {
			fmt.Printf("  ... and %d more\n", len(sites)-maxReportLines)
			break
		}
		loc := "synthetic"
		if s.Pos.IsValid() {
			loc = s.Pos.String()
		}
		fmt.Printf("  %s: %s allocated in %s escapes its goroutine\n", loc, s.Type, s.Method)
	}
}

// writeBench merges the session metrics with lowering tallies and
// writes them as one metrics JSON.
func writeBench(path string, sess *obs.Session, res *gofront.Result, f *extract.Facts, pairCount int) error {
	values := sess.Metrics.Snapshot()
	st := res.Prog.Stats()
	meta := res.Meta
	values["gofront.packages"] = float64(len(meta.Packages))
	values["gofront.classes"] = float64(st.Classes)
	values["gofront.methods"] = float64(st.Methods)
	values["gofront.stmts"] = float64(st.Stmts)
	values["gofront.allocs"] = float64(st.Allocs)
	values["gofront.invokes"] = float64(st.Invokes)
	values["gofront.funcs"] = float64(meta.Funcs)
	values["gofront.closures"] = float64(meta.Closures)
	values["gofront.goroutines"] = float64(meta.Goroutines)
	values["gofront.extern_calls"] = float64(meta.ExternCalls)
	values["gofront.type_errors"] = float64(meta.TypeErrors)
	values["extract.vars"] = float64(len(f.Vars))
	values["extract.heaps"] = float64(len(f.Heaps))
	values["solve.vp_pairs"] = float64(pairCount)
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMetricsJSON(w, "gopointsto", values); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
