// Command bddbddbd is the query-serving daemon: it runs the pointer
// analysis once at startup, freezes the solved relations into a
// snapshot, hydrates one replica per worker, and serves interactive
// queries over HTTP/JSON until terminated.
//
// Usage:
//
//	bddbddbd [-addr :8077] [-algo cs|ci|heap-cs] [-replicas N] (-synth NAME | program.jp)
//
// The input program comes from a synthetic benchmark (-synth quick, or
// any name from the Figure 3 suite) or a .jp file argument. -algo cs
// (default) runs the cloning-based context-sensitive analysis with
// on-the-fly call graph discovery; ci runs the context-insensitive
// one; heap-cs runs Algorithm 8's heap-cloned analysis, which makes
// the canned /pointsto and /aliases templates heap-sensitive
// (answers distinguish the per-context clones of each allocation
// site). Startup resilience flags (-timeout, -max-nodes,
// -checkpoint-dir, -resume) bound and checkpoint the initial solve; if
// the context-sensitive solve exhausts its budget the daemon degrades
// to the context-insensitive result and reports degraded:true in
// /healthz.
//
// Endpoints:
//
//	GET  /pointsto?var=NAME   heap objects the variable may point to
//	GET  /aliases?var=NAME    variables that may alias it
//	GET  /whodunnit?heap=NAME stores that may have written a reference
//	                          to the heap object (with contexts when
//	                          the analysis is context-sensitive)
//	GET  /precision           the startup {ci, cs, heap-cs} precision
//	                          comparison (404 unless -precision was set)
//	POST /query               ad-hoc Datalog (raw text or {"query":...})
//	POST /update              live input-tuple delta (JSON add/remove
//	                          sets); incrementally re-solves, cuts a new
//	                          snapshot generation and hot-swaps it in
//	                          with zero downtime
//	GET  /schema              domains and relation schemas, plus the
//	                          update delta wire format
//	GET  /healthz             liveness, replicas, build info, snapshot
//	                          fingerprint, degraded flag
//	GET  /metrics             obs metrics snapshot as JSON; Prometheus
//	                          text format with Accept: text/plain or
//	                          ?format=prom
//	GET  /debug/timeseries    the background sampler's ring of substrate
//	                          gauges (BDD nodes per replica, Go runtime)
//
// Every request gets an X-Request-Id (the client's, when sent) echoed
// in the response and stamped into error bodies; -access-log writes one
// JSON line per request carrying it. Query failures map to HTTP
// statuses: 400 malformed query, 422 well-formed but not evaluable
// here, 429 per-request budget exhausted
// (-query-timeout/-query-max-nodes), 503 shed under load or draining.
// SIGINT/SIGTERM drains gracefully: in-flight queries finish (up to
// -grace), new ones get 503. SIGQUIT dumps the sampler's time series to
// stderr and keeps serving. SIGHUP reloads the -update-file delta and
// applies it through the same lifecycle as POST /update; each update is
// bounded by -update-timeout/-update-max-nodes and degrades to a full
// background re-solve when the incremental path exhausts the budget.
// Any update failure rolls back completely — the previous generation
// keeps serving.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"bddbddb/internal/analysis"
	"bddbddb/internal/datalog"
	"bddbddb/internal/extract"
	"bddbddb/internal/obs"
	"bddbddb/internal/precision"
	"bddbddb/internal/program"
	"bddbddb/internal/resilience"
	"bddbddb/internal/serve"
	"bddbddb/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	algo := flag.String("algo", "cs", "analysis to serve: cs (context-sensitive), ci (context-insensitive), or heap-cs (heap-cloned)")
	precisionFlag := flag.Bool("precision", false, "compute the {ci, cs, heap-cs} precision comparison at startup and serve it at /precision")
	synthName := flag.String("synth", "", "generate the input program from the named synthetic benchmark (e.g. quick)")
	replicas := flag.Int("replicas", runtime.GOMAXPROCS(0), "snapshot replicas / worker goroutines")
	headroom := flag.Int("query-headroom", 1, "extra physical instances per domain for ad-hoc query variables")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache capacity in entries (-1 disables caching)")
	cacheBytes := flag.Int("cache-bytes", 4<<20, "result cache capacity in body bytes")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Minute, "result cache entry lifetime (0 = no expiry)")
	maxInFlight := flag.Int("max-inflight", 0, "admission limit; excess requests are shed with 503 (0 = 2×replicas)")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "per-request evaluation budget (429 when exceeded)")
	queryMaxNodes := flag.Int("query-max-nodes", 0, "per-request live BDD node budget (0 = unlimited)")
	maxTuples := flag.Int("max-tuples", 10000, "max tuples rendered per output relation (count stays exact)")
	maxStrata := flag.Int("max-query-strata", 1, "stratification depth allowed in ad-hoc queries")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	typeFilter := flag.Bool("typefilter", true, "apply declared-type filtering (the paper's Algorithm 2/5)")
	accessLog := flag.String("access-log", "", "append one JSON line per request to this file (\"-\" = stderr)")
	sampleInterval := flag.Duration("sample-interval", time.Second, "background substrate sampler period for /debug/timeseries (negative disables)")
	sampleCap := flag.Int("sample-cap", 0, "sampler ring capacity in samples (0 = 600)")
	updateFile := flag.String("update-file", "", "JSON delta file re-read and applied on SIGHUP")
	updateSlack := flag.Int("update-slack", 64, "spare domain capacity for element names arriving in live updates")
	updateTimeout := flag.Duration("update-timeout", 2*time.Minute, "per-update budget before degrading to a full background re-solve")
	updateMaxNodes := flag.Int("update-max-nodes", 0, "per-update live BDD node budget (0 = unlimited)")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if (*synthName == "") == (flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: bddbddbd [flags] (-synth NAME | program.jp)")
		flag.Usage()
		os.Exit(2)
	}
	sess, err := oflags.Start("bddbddbd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddbddbd:", err)
		os.Exit(1)
	}
	var alog io.Writer
	var alogFile *os.File
	switch {
	case *accessLog == "-":
		alog = os.Stderr
	case *accessLog != "":
		alogFile, err = os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bddbddbd: -access-log:", err)
			os.Exit(1)
		}
		alog = alogFile
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	status := run(ctx, sess, rflags, config{
		addr: *addr, algo: *algo, synthName: *synthName,
		typeFilter: *typeFilter, grace: *grace, precision: *precisionFlag,
		updateFile: *updateFile, updateSlack: *updateSlack,
		serve: serve.Config{
			UpdateTimeout:  *updateTimeout,
			UpdateMaxNodes: *updateMaxNodes,
			Replicas:       *replicas,
			QueryHeadroom:  *headroom,
			CacheEntries:   *cacheEntries,
			CacheBytes:     *cacheBytes,
			CacheTTL:       *cacheTTL,
			MaxInFlight:    *maxInFlight,
			QueryTimeout:   *queryTimeout,
			QueryMaxNodes:  *queryMaxNodes,
			MaxTuples:      *maxTuples,
			MaxStrata:      *maxStrata,
			Metrics:        sess.Metrics,
			Tracer:         sess.Tracer,
			AccessLog:      alog,
			SampleInterval: *sampleInterval,
			SampleCap:      *sampleCap,
		},
	})
	stop()
	if alogFile != nil {
		if err := alogFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bddbddbd: -access-log:", err)
		}
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bddbddbd:", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

type config struct {
	addr, algo, synthName string
	typeFilter            bool
	precision             bool
	grace                 time.Duration
	updateFile            string
	updateSlack           int
	serve                 serve.Config
}

func run(ctx context.Context, sess *obs.Session, rflags resilience.Flags, cfg config) int {
	// BDDBDDBD_FAULT=<point> arms a one-shot panic at the named
	// resilience fault point (update.apply, update.resolve,
	// snapshot.hydrate, snapshot.swap, ...). CI's update smoke uses it
	// to prove a mid-update failure rolls back cleanly and the daemon
	// keeps serving; one-shot so the retry can then succeed.
	if fp := os.Getenv("BDDBDDBD_FAULT"); fp != "" {
		var fired atomic.Bool
		resilience.SetFaultHook(func(name string) {
			if name == fp && fired.CompareAndSwap(false, true) {
				panic("injected fault at " + name)
			}
		})
	}
	prog, err := loadProgram(cfg.synthName)
	if err != nil {
		return fail(err)
	}
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		return fail(err)
	}
	acfg := analysis.Config{
		Tracer:        sess.Tracer,
		Metrics:       sess.Metrics,
		Context:       ctx,
		Budget:        rflags.Budget(),
		CheckpointDir: rflags.CheckpointDir,
		Resume:        rflags.Resume,
		DomainSlack:   cfg.updateSlack,
	}
	fmt.Fprintf(os.Stderr, "bddbddbd: solving (%s, %d vars, %d heap objects)...\n",
		cfg.algo, len(facts.Vars), len(facts.Heaps))
	t0 := time.Now()
	var res *analysis.Result
	switch cfg.algo {
	case "cs":
		res, err = analysis.RunContextSensitive(facts, nil, acfg)
	case "ci":
		res, err = analysis.RunContextInsensitive(facts, cfg.typeFilter, acfg)
	case "heap-cs":
		res, err = analysis.RunHeapCloned(facts, nil, acfg)
	default:
		err = fmt.Errorf("unknown -algo %q (want cs, ci, or heap-cs)", cfg.algo)
	}
	if err != nil {
		return fail(err)
	}
	if cfg.precision {
		// The comparison re-solves all three modes on a private config:
		// no checkpointing (three solves would fight over the directory)
		// and no domain slack (the report never serves updates).
		pcfg := analysis.Config{Tracer: sess.Tracer, Context: ctx, Budget: rflags.Budget()}
		t1 := time.Now()
		rep, perr := precision.Compare(workloadName(cfg), facts, pcfg, precision.Options{})
		if perr != nil {
			return fail(perr)
		}
		cfg.serve.Precision = rep
		fmt.Fprintf(os.Stderr, "bddbddbd: precision comparison ready in %v (heap contexts %d, cloned sites %d)\n",
			time.Since(t1).Round(time.Millisecond), rep.HeapContexts, rep.ClonedSites)
	}
	fmt.Fprintf(os.Stderr, "bddbddbd: solved in %v%s\n", time.Since(t0).Round(time.Millisecond),
		map[bool]string{true: " (degraded to context-insensitive)", false: ""}[res.Degraded])
	for _, sch := range res.Schemas() {
		fmt.Fprintf(os.Stderr, "bddbddbd:   %s %v (%s)\n", sch.Name, sch.Attrs, sch.Kind)
	}

	cfg.serve.Degraded = res.Degraded
	live, err := analysis.Live(res)
	if err != nil {
		return fail(err)
	}
	cfg.serve.Updater = live
	srv, err := serve.New(res.Solver, cfg.serve)
	if err != nil {
		return fail(err)
	}
	// SIGHUP re-reads -update-file and applies it as a live delta —
	// the same lifecycle as POST /update: incremental re-solve, new
	// snapshot generation, atomic swap; rollback on any failure.
	hupc := make(chan os.Signal, 1)
	signal.Notify(hupc, syscall.SIGHUP)
	defer signal.Stop(hupc)
	go func() {
		for range hupc {
			if cfg.updateFile == "" {
				fmt.Fprintln(os.Stderr, "bddbddbd: SIGHUP: no -update-file configured")
				continue
			}
			raw, err := os.ReadFile(cfg.updateFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bddbddbd: SIGHUP:", err)
				continue
			}
			var wd datalog.WireDelta
			if err := json.Unmarshal(raw, &wd); err != nil {
				fmt.Fprintf(os.Stderr, "bddbddbd: SIGHUP: bad delta in %s: %v\n", cfg.updateFile, err)
				continue
			}
			ur, err := srv.ApplyUpdate(ctx, wd)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bddbddbd: SIGHUP: update rolled back:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "bddbddbd: SIGHUP: update applied: generation %d, snapshot %s (+%d/-%d tuples, full=%v, %v)\n",
				ur.Generation, ur.Fingerprint, ur.Stats.Added, ur.Stats.Removed, ur.Stats.Full, ur.Stats.Duration.Round(time.Microsecond))
		}
	}()
	// SIGQUIT dumps the sampler's time-series ring to stderr and keeps
	// serving — a poor man's flight recorder for "the daemon felt slow
	// five minutes ago". (Registering the handler replaces the Go
	// runtime's default stack-dump-and-exit for SIGQUIT.)
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			if sm := srv.Sampler(); sm != nil {
				fmt.Fprintf(os.Stderr, "bddbddbd: SIGQUIT time-series dump (snapshot %s):\n", srv.Fingerprint())
				if err := sm.WriteJSON(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "bddbddbd: timeseries dump:", err)
				}
				fmt.Fprintln(os.Stderr)
			} else {
				fmt.Fprintln(os.Stderr, "bddbddbd: SIGQUIT: sampler disabled (-sample-interval < 0)")
			}
		}
	}()

	hs := &http.Server{Addr: cfg.addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "bddbddbd: serving on %s with %d replicas (%d BDD nodes each, snapshot %s)\n",
		cfg.addr, srv.Replicas(), serveNodes(srv), srv.Fingerprint())

	select {
	case err := <-errc:
		srv.Close()
		return fail(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop admitting, let in-flight requests finish,
	// then stop the workers. Close must follow Shutdown — workers may
	// not be stopped while the HTTP layer can still dispatch to them.
	fmt.Fprintln(os.Stderr, "bddbddbd: draining...")
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	err = hs.Shutdown(sctx)
	cancel()
	srv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddbddbd: shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "bddbddbd: bye")
	return 0
}

// workloadName labels the precision report with the input's identity.
func workloadName(cfg config) string {
	if cfg.synthName != "" {
		return cfg.synthName
	}
	return flag.Arg(0)
}

func loadProgram(synthName string) (*program.Program, error) {
	if synthName != "" {
		if synthName == "quick" {
			return synth.Generate(synth.Quick), nil
		}
		b := synth.BenchmarkByName(synthName)
		if b == nil {
			return nil, fmt.Errorf("unknown synthetic benchmark %q", synthName)
		}
		return synth.Generate(b.Params), nil
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return nil, err
	}
	return program.Parse(string(src))
}

func serveNodes(s *serve.Server) int { return s.SnapshotNodes() }

func fail(err error) int {
	if errors.Is(err, http.ErrServerClosed) {
		return 0
	}
	fmt.Fprintln(os.Stderr, "bddbddbd:", err)
	return resilience.ExitCode(err)
}
