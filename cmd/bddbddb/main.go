// Command bddbddb evaluates a Datalog program over BDD relations, in
// the spirit of the paper's tool of the same name.
//
// Usage:
//
//	bddbddb [-check] [-Werror] [-explain] [-noopt] [-order C_I_V] [-print rel1,rel2] [-facts dir] program.dl
//
// Programs are parsed and semantically checked first; diagnostics are
// reported as file:line:col: DLxxx: message (see the DL-code catalog in
// internal/datalog/check). -check stops after the analysis — exit
// status 1 if any errors were reported, 0 otherwise. -Werror promotes
// warnings to errors in both modes.
//
// Input relations are loaded from <facts>/<relation>.tuples, one tuple
// per line as whitespace-separated integers (lines starting with # are
// comments). Missing files leave the relation empty. After solving,
// the sizes of all output relations are printed; -print additionally
// dumps the named relations' tuples.
//
// -explain prints every rule's relational-algebra plan before and
// after the optimizer's rewrites (join reordering, projection
// push-down, dead-op elimination, normalization hoisting) and exits
// without solving; -noopt pins the legacy textual-order execution.
//
// -backend picks the relation storage backend: auto (the default)
// chooses per relation per stratum from observed cardinality, bdd pins
// the paper's pure-BDD representation, explicit forces sorted tuple
// rows wherever representable. Results are identical in every mode;
// -explain shows the per-relation decisions.
//
// Observability: -trace writes a Chrome trace-event file of the solve
// (stratum → iteration → rule → op spans), -metrics a flat metrics JSON,
// -v logs solver progress to stderr, and -cpuprofile/-memprofile write
// runtime/pprof profiles.
//
// Resilience: -timeout and -max-nodes bound the run (exit code 3 on
// exhaustion), Ctrl-C cancels it cleanly (exit code 4), and
// -checkpoint-dir/-resume save and restore the solve across runs.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bddbddb/internal/datalog"
	"bddbddb/internal/datalog/check"
	"bddbddb/internal/datalog/plan"
	"bddbddb/internal/obs"
	"bddbddb/internal/resilience"
)

func main() {
	checkOnly := flag.Bool("check", false, "parse and check the program, report diagnostics, and exit")
	wError := flag.Bool("Werror", false, "treat checker warnings as errors")
	orderFlag := flag.String("order", "", "variable order: logical domain names separated by '_'")
	printFlag := flag.String("print", "", "comma-separated output relations to dump")
	factsDir := flag.String("facts", ".", "directory holding <relation>.tuples input files")
	nodes := flag.Int("nodes", 0, "initial BDD node table size")
	cache := flag.Int("cache", 0, "BDD operation cache size")
	ruleStats := flag.Bool("rulestats", false, "print per-rule applications, time, and derived tuples")
	explain := flag.Bool("explain", false, "print each rule's execution plan before/after optimization and exit without solving")
	noOpt := flag.Bool("noopt", false, "disable the plan optimizer (pinned textual-order execution)")
	backend := datalog.BackendFlag{Mode: datalog.BackendAuto}
	flag.Var(&backend, "backend", "relation storage backend: auto, bdd, or explicit")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bddbddb [flags] program.dl")
		flag.Usage()
		os.Exit(2)
	}
	sess, err := oflags.Start("bddbddb")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddbddb:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	status := run(ctx, sess, rflags, flag.Arg(0), *checkOnly, *wError, *explain, *noOpt, backend.Mode, *orderFlag, *printFlag, *factsDir, *nodes, *cache, *ruleStats)
	stop()
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bddbddb:", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

// run executes the tool and returns the process exit status: 0 on
// success, 1 when the program is rejected or evaluation fails, 3 when a
// -timeout/-max-nodes budget is exhausted, 4 on Ctrl-C, 5 on an
// internal solver failure.
func run(ctx context.Context, sess *obs.Session, rflags resilience.Flags, path string, checkOnly, wError, explain, noOpt bool, backend plan.BackendMode, order, printRels, factsDir string, nodes, cache int, ruleStats bool) int {
	src, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	prog, diags, err := datalog.ParseAndCheck(path, string(src))
	if err != nil {
		// Syntax error: a single DL000 diagnostic.
		var ce *check.Error
		if errors.As(err, &ce) {
			reportDiags(ce.Diags)
			return 1
		}
		return fail(err)
	}
	if wError {
		diags = diags.Promote()
	}
	// Validate -print names against the program's relation table before
	// solving, so typos fail fast instead of silently printing nothing.
	toPrint := map[string]bool{}
	for _, n := range strings.Split(printRels, ",") {
		if n == "" {
			continue
		}
		if prog.Relation(n) == nil {
			diags = append(diags, check.Diag{
				Code:     check.CodeRelation,
				Severity: check.SevError,
				File:     path,
				Message:  fmt.Sprintf("-print names undeclared relation %s", n),
			})
		}
		toPrint[n] = true
	}
	diags.Sort()
	reportDiags(diags)
	if diags.HasErrors() {
		return 1
	}
	if checkOnly {
		return 0
	}

	opts := datalog.Options{
		NodeSize:        nodes,
		CacheSize:       cache,
		CountRuleTuples: ruleStats,
		Tracer:          sess.Tracer,
		Metrics:         sess.Metrics,
		Control:         rflags.Controller(ctx),
		Checkpoint:      rflags.Checkpoint(),
		ResumeFrom:      rflags.Resume,
	}
	if noOpt {
		opts.Plan = datalog.LegacyPlan()
	}
	// -backend composes with -noopt: storage choice is orthogonal to the
	// plan rewrite passes.
	opts.Plan.Backend = backend
	if order != "" {
		opts.Order = strings.Split(order, "_")
	}
	// Element names from map files referenced by the program.
	opts.ElemNames = map[string][]string{}
	for _, d := range prog.Domains {
		if d.MapFile == "" {
			continue
		}
		names, err := readLines(filepath.Join(factsDir, d.MapFile))
		if err == nil {
			opts.ElemNames[d.Name] = names
		}
	}
	s, err := datalog.NewSolver(prog, opts)
	if err != nil {
		return fail(err)
	}
	for _, rd := range prog.Relations {
		if rd.Kind != datalog.RelInput {
			continue
		}
		if err := loadTuples(s, prog, factsDir, rd.Name); err != nil {
			var ce *check.Error
			if errors.As(err, &ce) {
				reportDiags(ce.Diags)
				return 1
			}
			return fail(err)
		}
	}
	if explain {
		// Facts are loaded, so the plans print with the cardinalities
		// the planner would actually see at stratum 0.
		s.Explain(os.Stdout)
		return 0
	}
	if err := s.Solve(); err != nil {
		return fail(err)
	}
	st := s.Stats()
	fmt.Printf("solved in %v: %d rule applications, %d iterations, peak %d live BDD nodes\n",
		st.SolveTime, st.RuleApplications, st.Iterations, st.PeakLiveNodes)
	if ruleStats {
		for _, rs := range st.Rules {
			fmt.Printf("rule %-60s apps=%-6d time=%-12v tuples=%d\n",
				rs.Rule, rs.Applications, rs.Time.Round(time.Microsecond), rs.DeltaTuples)
		}
	}
	for _, rd := range prog.Relations {
		if rd.Kind != datalog.RelOutput && !toPrint[rd.Name] {
			continue
		}
		r := s.Relation(rd.Name)
		fmt.Printf("%s: %s tuples\n", rd.Name, r.Size())
		if toPrint[rd.Name] {
			// Tuples() sorts, so dumps read identically whichever
			// storage backend produced the relation.
			for _, vals := range r.Tuples() {
				parts := make([]string, len(vals))
				for i, v := range vals {
					parts[i] = strconv.FormatUint(v, 10)
				}
				fmt.Printf("  (%s)\n", strings.Join(parts, ", "))
			}
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "bddbddb:", err)
	return resilience.ExitCode(err)
}

func reportDiags(ds check.Diags) {
	for _, d := range ds {
		fmt.Fprintln(os.Stderr, d)
	}
}

// loadTuples fills one input relation from <dir>/<name>.tuples. Rows
// are fully validated against the relation's declared schema before
// they reach the BDD layer, so malformed user input surfaces as a
// positioned DL110 diagnostic (file:line within the .tuples file)
// instead of a panic out of rel.AddTuple.
func loadTuples(s *datalog.Solver, prog *datalog.Program, dir, name string) error {
	path := filepath.Join(dir, name+".tuples")
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	decl := prog.Relation(name)
	sizes := make([]uint64, len(decl.Attrs))
	for i, a := range decl.Attrs {
		sizes[i] = prog.Domain(a.Domain).Size
	}
	rel := s.Relation(name)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != len(decl.Attrs) {
			return check.Errorf(check.CodeTupleInput, path, line, 1,
				"%s has arity %d, row has %d fields", name, len(decl.Attrs), len(fields))
		}
		vals := make([]uint64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseUint(fstr, 10, 64)
			if err != nil {
				return check.Errorf(check.CodeTupleInput, path, line, 1,
					"bad value %q for attribute %s", fstr, decl.Attrs[i].Name)
			}
			if v >= sizes[i] {
				return check.Errorf(check.CodeTupleInput, path, line, 1,
					"value %d out of range for attribute %s (domain %s has size %d)",
					v, decl.Attrs[i].Name, decl.Attrs[i].Domain, sizes[i])
			}
			vals[i] = v
		}
		rel.AddTuple(vals...)
	}
	return sc.Err()
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}
