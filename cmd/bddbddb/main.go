// Command bddbddb evaluates a Datalog program over BDD relations, in
// the spirit of the paper's tool of the same name.
//
// Usage:
//
//	bddbddb [-order C_I_V] [-print rel1,rel2] [-facts dir] program.dl
//
// Input relations are loaded from <facts>/<relation>.tuples, one tuple
// per line as whitespace-separated integers (lines starting with # are
// comments). Missing files leave the relation empty. After solving,
// the sizes of all output relations are printed; -print additionally
// dumps the named relations' tuples.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bddbddb/internal/datalog"
)

func main() {
	orderFlag := flag.String("order", "", "variable order: logical domain names separated by '_'")
	printFlag := flag.String("print", "", "comma-separated output relations to dump")
	factsDir := flag.String("facts", ".", "directory holding <relation>.tuples input files")
	nodes := flag.Int("nodes", 0, "initial BDD node table size")
	cache := flag.Int("cache", 0, "BDD operation cache size")
	ruleStats := flag.Bool("rulestats", false, "print per-rule applications, time, and derived tuples")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bddbddb [flags] program.dl")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *orderFlag, *printFlag, *factsDir, *nodes, *cache, *ruleStats); err != nil {
		fmt.Fprintln(os.Stderr, "bddbddb:", err)
		os.Exit(1)
	}
}

func run(path, order, printRels, factsDir string, nodes, cache int, ruleStats bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		return err
	}
	opts := datalog.Options{NodeSize: nodes, CacheSize: cache, CountRuleTuples: ruleStats}
	if order != "" {
		opts.Order = strings.Split(order, "_")
	}
	// Element names from map files referenced by the program.
	opts.ElemNames = map[string][]string{}
	for _, d := range prog.Domains {
		if d.MapFile == "" {
			continue
		}
		names, err := readLines(filepath.Join(factsDir, d.MapFile))
		if err == nil {
			opts.ElemNames[d.Name] = names
		}
	}
	s, err := datalog.NewSolver(prog, opts)
	if err != nil {
		return err
	}
	for _, rd := range prog.Relations {
		if rd.Kind != datalog.RelInput {
			continue
		}
		if err := loadTuples(s, factsDir, rd.Name); err != nil {
			return err
		}
	}
	if err := s.Solve(); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("solved in %v: %d rule applications, %d iterations, peak %d live BDD nodes\n",
		st.SolveTime, st.RuleApplications, st.Iterations, st.PeakLiveNodes)
	if ruleStats {
		for _, rs := range st.Rules {
			fmt.Printf("rule %-60s apps=%-6d time=%-12v tuples=%d\n",
				rs.Rule, rs.Applications, rs.Time.Round(time.Microsecond), rs.DeltaTuples)
		}
	}
	toPrint := map[string]bool{}
	for _, n := range strings.Split(printRels, ",") {
		if n != "" {
			toPrint[n] = true
		}
	}
	for _, rd := range prog.Relations {
		if rd.Kind != datalog.RelOutput {
			continue
		}
		r := s.Relation(rd.Name)
		fmt.Printf("%s: %s tuples\n", rd.Name, r.Size())
		if toPrint[rd.Name] {
			r.Iterate(func(vals []uint64) bool {
				parts := make([]string, len(vals))
				for i, v := range vals {
					parts[i] = strconv.FormatUint(v, 10)
				}
				fmt.Printf("  (%s)\n", strings.Join(parts, ", "))
				return true
			})
		}
	}
	return nil
}

func loadTuples(s *datalog.Solver, dir, name string) error {
	f, err := os.Open(filepath.Join(dir, name+".tuples"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	rel := s.Relation(name)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		vals := make([]uint64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseUint(fstr, 10, 64)
			if err != nil {
				return fmt.Errorf("%s.tuples:%d: bad value %q", name, line, fstr)
			}
			vals[i] = v
		}
		rel.AddTuple(vals...)
	}
	return sc.Err()
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}
