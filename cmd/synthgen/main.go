// Command synthgen emits the synthetic benchmark programs as ".jp"
// text for inspection or use with cmd/pointsto.
//
// Usage:
//
//	synthgen -list
//	synthgen -bench megamek > megamek.jp
//
// Resilience: -timeout bounds generation (exit code 3) and Ctrl-C
// cancels it (exit code 4). -max-nodes, -checkpoint-dir and -resume
// are accepted for flag parity with the other commands but are inert —
// synthgen runs no BDD solver.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bddbddb/internal/callgraph"
	"bddbddb/internal/obs"
	"bddbddb/internal/program"
	"bddbddb/internal/resilience"
	"bddbddb/internal/synth"
)

func main() {
	list := flag.Bool("list", false, "list benchmark configurations")
	bench := flag.String("bench", "", "benchmark to generate")
	var oflags obs.Flags
	oflags.Register(flag.CommandLine)
	var rflags resilience.Flags
	rflags.Register(flag.CommandLine)
	flag.Parse()
	sess, err := oflags.Start("synthgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctl := rflags.Controller(ctx)
	switch {
	case *list:
		fmt.Printf("%-10s %-8s %-7s %-7s %-8s %s\n", "name", "classes", "layers", "width", "threads", "paper c.s. paths")
		for _, b := range synth.Benchmarks {
			fmt.Printf("%-10s %-8d %-7d %-7d %-8d %s\n",
				b.Params.Name, b.Params.Classes, b.Params.Layers, b.Params.Width,
				b.Params.Threads, callgraph.FormatPathCount(b.PaperPaths()))
		}
	case *bench != "":
		b := synth.BenchmarkByName(*bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "synthgen: unknown benchmark %q (try -list)\n", *bench)
			os.Exit(1)
		}
		obs.Begin(sess.Tracer, "synthgen.generate", obs.A("bench", b.Params.Name))
		p := synth.Generate(b.Params)
		obs.End(sess.Tracer)
		if err := ctl.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "synthgen:", err)
			stop()
			os.Exit(resilience.ExitCode(err))
		}
		obs.Begin(sess.Tracer, "synthgen.format")
		out := program.Format(p)
		obs.End(sess.Tracer)
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}
