// Package bddbddb reproduces Whaley & Lam, "Cloning-Based
// Context-Sensitive Pointer Alias Analysis Using Binary Decision
// Diagrams" (PLDI 2004): a BDD-based deductive database (bddbddb) that
// evaluates Datalog programs over relations stored as binary decision
// diagrams, and on top of it the paper's scalable context-sensitive,
// inclusion-based pointer analysis for Java-like programs — cloning a
// method for every acyclic call path (Algorithm 4's context numbering)
// and running the context-insensitive rules over the exploded graph.
//
// The implementation lives under internal/:
//
//	bdd         the BDD package (node table, GC, relprod/replace,
//	            the O(k) range and add-constant primitives)
//	rel         relations with named attributes over BDDs
//	datalog     the bddbddb engine (parser, stratification, semi-naive
//	            BDD evaluation) plus an explicit tuple-set oracle
//	program     the Java-like IR and its ".jp" text format
//	cha         class hierarchy analysis
//	extract     IR -> input relations (vP0, store, load, cha, ...)
//	callgraph   SCCs and Algorithm 4 context numbering
//	analysis    Algorithms 1-7 and the Section 5 queries
//	synth       the 21 calibrated synthetic benchmarks (Figure 3)
//	order       empirical BDD variable-order search
//	experiments the Figure 3-6 harness
//
// Entry points: cmd/bddbddb (run Datalog), cmd/pointsto (analyze a .jp
// program), cmd/synthgen (emit benchmarks), cmd/experiments (regenerate
// the paper's tables). See README.md, DESIGN.md and EXPERIMENTS.md.
package bddbddb
