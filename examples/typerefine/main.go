// Typerefine reproduces Section 5.3: comparing how many variables the
// context-insensitive and context-sensitive analyses report as
// multi-typed, and whose declared types can be refined to something
// more precise. Library code declared against general types is the
// classic target: the application only ever stores one concrete type.
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

const src = `
entry Main.main

class Shape {
}
class Circle extends Shape {
}
class Square extends Shape {
}

class Holder {
    field item
    method put(v: Shape) returns r: Shape {
        this.item = v
        r = v
        return r
    }
}

class Main {
    static method main(args) {
        var h1: Holder
        var h2: Holder
        h1 = new Holder
        h2 = new Holder
        c = new Circle
        s = new Square
        rc = h1.put(c)
        rs = h2.put(s)
    }
}
`

func run(label string, f func() (*analysis.Result, error)) analysis.RefinementMetrics {
	r, err := f()
	if err != nil {
		log.Fatal(err)
	}
	m := analysis.RefinementResults(r)
	fmt.Printf("%-28s multi-typed %5.1f%%   refinable %5.1f%%   (of %d typed vars)\n",
		label, m.MultiPct, m.RefinePct, m.TypedVars)
	return m
}

func main() {
	prog := program.MustParse(src)
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("type refinement across analysis variants (Figure 6 columns):")
	run("context-insensitive", func() (*analysis.Result, error) {
		return analysis.RunContextInsensitive(facts, true, analysis.Config{
			ExtraSrc: analysis.TypeRefinementQuerySrc(analysis.RefineCIPointer)})
	})
	run("projected context-sensitive", func() (*analysis.Result, error) {
		return analysis.RunContextSensitive(facts, nil, analysis.Config{
			ExtraSrc: analysis.TypeRefinementQuerySrc(analysis.RefineProjectedCSPointer)})
	})
	mcs := run("full context-sensitive", func() (*analysis.Result, error) {
		return analysis.RunContextSensitive(facts, nil, analysis.Config{
			ExtraSrc: analysis.TypeRefinementQuerySrc(analysis.RefineCSPointer)})
	})

	if mcs.MultiType == 0 {
		fmt.Println("\nfull context sensitivity proves every variable mono-typed here:")
		fmt.Println("Holder.put's parameter holds a Circle in one calling context and a")
		fmt.Println("Square in the other — never both at once.")
	}
}
