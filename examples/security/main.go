// Security reproduces Section 5.2: auditing for secret keys that were
// ever stored in String objects before reaching a cryptographic API.
// Strings are immutable, so such keys cannot be scrubbed from memory;
// the query flags every call to the key-accepting method whose argument
// derives — through any chain of copies, fields, and calls — from a
// String.
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

const src = `
entry Main.main

class java.lang.String {
    method toCharArray() returns r {
        r = new java.lang.String
    }
}

class Key {
}

class PBEKeySpec {
    method init(key) {
    }
}

class Main {
    static method main(args) {
        # BAD: the key passed through a String.
        pw = new java.lang.String
        chars = pw.toCharArray()
        spec1 = new PBEKeySpec
        spec1.init(chars)

        # GOOD: the key never touched a String.
        raw = new Key
        spec2 = new PBEKeySpec
        spec2.init(raw)
    }
}
`

func main() {
	prog := program.MustParse(src)
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.RunContextSensitive(facts, nil, analysis.Config{
		ExtraSrc: analysis.SecurityQuerySrc("java.lang.String", "PBEKeySpec.init"),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("objects derived from String:")
	res.Solver.Relation("fromString").Iterate(func(vals []uint64) bool {
		fmt.Printf("  %s\n", facts.Heaps[vals[0]])
		return true
	})

	fmt.Println("\nvulnerable PBEKeySpec.init() call sites:")
	n := 0
	res.Solver.Relation("vuln").Iterate(func(vals []uint64) bool {
		fmt.Printf("  context %d: %s\n", vals[0], facts.Invokes[vals[1]])
		n++
		return true
	})
	if n == 0 {
		fmt.Println("  (none)")
	}
}
