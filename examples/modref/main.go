// Modref reproduces Section 5.4: the context-sensitive mod-ref
// analysis answers "which fields of which objects may this method
// (transitively) modify or reference, in each calling context?" — the
// query behind dependence analysis and safe code motion.
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

const src = `
entry Main.main

class Account {
    field balance
}

class Ledger {
    field log
    method record(a: Account) {
        e = new Account
        this.log = e
        x = a.balance
    }
}

class Main {
    static method main(args) {
        l = new Ledger
        acct = new Account
        l.record(acct)
        Main::audit(l)
    }
    static method audit(l: Ledger) {
        snapshot = l.log
    }
}
`

func main() {
	prog := program.MustParse(src)
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.RunContextSensitive(facts, nil, analysis.Config{
		ExtraSrc: analysis.ModRefQuerySrc,
	})
	if err != nil {
		log.Fatal(err)
	}

	show := func(rel, verb string) {
		fmt.Printf("%s — method (context) %s object.field:\n", rel, verb)
		res.Solver.Relation(rel).Iterate(func(vals []uint64) bool {
			fmt.Printf("  %-14s (ctx %d) %s %s.%s\n",
				facts.Methods[vals[1]], vals[0], verb,
				facts.Heaps[vals[2]], facts.Fields[vals[3]])
			return true
		})
		fmt.Println()
	}
	show("mod", "modifies")
	show("ref", "reads")

	fmt.Println("note how Main.main inherits everything its callees touch,")
	fmt.Println("while Main.audit only reads — per calling context.")
}
