// Memleak reproduces Section 5.1: a programmer suspects objects from
// one allocation site are leaking and asks the context-sensitive
// points-to results (a) which heap objects still point to them, and
// (b) which store statements — and in which calling contexts — created
// those references.
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

const src = `
entry Main.main

class Image {
}

class Cache {
    field slot
    method remember(v: Image) {
        this.slot = v
    }
}

class Main {
    static method main(args) {
        cache = new Cache
        global.cache = cache

        img = new Image
        cache.remember(img)

        tmp = new Image
        Main::render(tmp)
    }
    static method render(p: Image) {
    }
}
`

func main() {
	prog := program.MustParse(src)
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The "leaked" site: the Image created at Main.main and remembered
	// by the cache. Allocation sites are named Class.method@index:Type.
	var leakSite string
	for h, name := range facts.Heaps {
		if h > 0 && facts.AllocMethod[h] >= 0 && name == "Main.main@2:Image" {
			leakSite = name
		}
	}
	if leakSite == "" {
		log.Fatal("leak site not found")
	}
	fmt.Printf("suspect allocation site: %s\n\n", leakSite)

	res, err := analysis.RunContextSensitive(facts, nil, analysis.Config{
		ExtraSrc: analysis.MemoryLeakQuerySrc(leakSite),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("whoPointsTo — objects/fields holding the suspect:")
	res.Solver.Relation("whoPointsTo").Iterate(func(vals []uint64) bool {
		fmt.Printf("  %s.%s\n", facts.Heaps[vals[0]], facts.Fields[vals[1]])
		return true
	})

	fmt.Println("\nwhoDunnit — stores that created the references (with context):")
	res.Solver.Relation("whoDunnit").Iterate(func(vals []uint64) bool {
		fmt.Printf("  context %d: %s.%s = %s\n",
			vals[0], facts.Vars[vals[1]], facts.Fields[vals[2]], facts.Vars[vals[3]])
		return true
	})
}
