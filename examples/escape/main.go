// Escape reproduces Section 5.6: the thread-sensitive points-to
// analysis (Algorithm 7) decides which objects stay private to their
// creating thread (allocatable in thread-local heaps) and which
// synchronization operations guard only thread-private objects (and
// can be removed).
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

const src = `
entry Main.main

class Buffer {
}

class Producer extends java.lang.Thread {
    method run() {
        # scratch stays inside this thread: its sync is removable.
        scratch = new Buffer
        sync scratch

        # shared is published and read by main: its sync is needed.
        shared = new Buffer
        global.mailbox = shared
        sync shared
    }
}

class Main {
    static method main(args) {
        p = new Producer
        p.start()
        got = global.mailbox
        sync got
    }
}
`

func main() {
	prog := program.MustParse(src)
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.RunThreadEscape(facts, nil, analysis.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("escaped allocation sites (accessed by another thread):")
	seen := map[uint64]bool{}
	res.Solver.Relation("escaped").Iterate(func(vals []uint64) bool {
		if !seen[vals[1]] {
			seen[vals[1]] = true
			fmt.Printf("  %s\n", facts.Heaps[vals[1]])
		}
		return true
	})

	fmt.Println("\ncaptured allocation sites (thread-local heap candidates):")
	capSeen := map[uint64]bool{}
	res.Solver.Relation("captured").Iterate(func(vals []uint64) bool {
		if !seen[vals[1]] && !capSeen[vals[1]] {
			capSeen[vals[1]] = true
			fmt.Printf("  %s\n", facts.Heaps[vals[1]])
		}
		return true
	})

	needed := map[uint64]bool{}
	res.Solver.Relation("neededSyncs").Iterate(func(vals []uint64) bool {
		needed[vals[1]] = true
		return true
	})
	fmt.Println("\nsync operations:")
	for _, s := range facts.Syncs {
		verdict := "REMOVABLE (locks only thread-private objects)"
		if needed[s[0]] {
			verdict = "needed"
		}
		fmt.Printf("  sync %-24s %s\n", facts.Vars[s[0]], verdict)
	}

	m := analysis.EscapeResults(res)
	fmt.Printf("\nsummary: %d captured, %d escaped | %d syncs removable, %d needed\n",
		m.CapturedSites, m.EscapedSites, m.UnneededSyncs, m.NeededSyncs)
}
