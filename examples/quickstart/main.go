// Quickstart: build a small program with the Builder API, run the
// on-the-fly points-to analysis (Algorithm 3), and inspect points-to
// sets and the discovered call graph.
package main

import (
	"fmt"
	"log"

	"bddbddb/internal/analysis"
	"bddbddb/internal/extract"
	"bddbddb/internal/program"
)

func main() {
	// A program with a factory, a virtual call, and heap traffic:
	//
	//   box = new Box; item = Main.mk(); box.put(item); got = box.take()
	b := program.NewBuilder()
	b.Class("Item")
	box := b.Class("Box")
	box.Field("contents")
	box.Method("put", program.Params("v: Item")).
		Store("this", "contents", "v")
	box.Method("take", program.Returns("r: Item")).
		Load("r", "this", "contents").
		Return("r")
	main := b.Class("Main")
	mb := main.Method("main", program.Params("args"), program.Static())
	mb.DeclareLocal("box", "Box")
	mb.New("box", "Box")
	mb.InvokeStatic("item", "Main", "mk")
	mb.InvokeVirtual("", "box", "put", "item")
	mb.InvokeVirtual("got", "box", "take")
	main.Method("mk", program.Returns("r: Item"), program.Static()).
		New("r", "Item").
		Return("r")
	b.Entry("Main", "main")
	prog := b.MustBuild()

	// Lower to the paper's input relations and solve Algorithm 3.
	facts, err := extract.Extract(prog, extract.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.RunOnTheFly(facts, analysis.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== points-to sets ==")
	for pair := range res.PointsToPairs() {
		fmt.Printf("%-18s --> %s\n", facts.Vars[pair[0]], facts.Heaps[pair[1]])
	}

	fmt.Println("\n== discovered call graph ==")
	res.Solver.Relation("IE").Iterate(func(vals []uint64) bool {
		fmt.Printf("%-14s calls %s\n", facts.Invokes[vals[0]], facts.Methods[vals[1]])
		return true
	})

	st := res.Stats()
	fmt.Printf("\nsolved in %v (%d rule applications, peak %d live BDD nodes)\n",
		st.SolveTime, st.RuleApplications, st.PeakLiveNodes)
}
